#include "crypto/curve25519.h"

#include <bit>
#include <cstring>

#include "common/secret.h"

namespace dauth::crypto::curve25519 {
namespace {

constexpr std::uint64_t kMask51 = (std::uint64_t{1} << 51) - 1;

using u128 = unsigned __int128;

inline std::uint64_t load_le64(const std::uint8_t* p) noexcept {
  std::uint64_t v;
  std::memcpy(&v, p, 8);  // little-endian targets only (see static_assert below)
  return v;
}
static_assert(std::endian::native == std::endian::little,
              "curve25519 packing assumes a little-endian target");

Fe fe_from_bytes(const std::uint8_t (&b)[32]) noexcept {
  Fe r;
  r.v[0] = load_le64(b + 0) & kMask51;
  r.v[1] = (load_le64(b + 6) >> 3) & kMask51;
  r.v[2] = (load_le64(b + 12) >> 6) & kMask51;
  r.v[3] = (load_le64(b + 19) >> 1) & kMask51;
  r.v[4] = (load_le64(b + 24) >> 12) & kMask51;
  return r;
}

}  // namespace

const Fe kZero = {{0, 0, 0, 0, 0}};
const Fe kOne = {{1, 0, 0, 0, 0}};

// Constants from RFC 7748/8032, little-endian byte encodings.
const Fe kD = [] {
  const std::uint8_t b[32] = {0xa3, 0x78, 0x59, 0x13, 0xca, 0x4d, 0xeb, 0x75,
                              0xab, 0xd8, 0x41, 0x41, 0x4d, 0x0a, 0x70, 0x00,
                              0x98, 0xe8, 0x79, 0x77, 0x79, 0x40, 0xc7, 0x8c,
                              0x73, 0xfe, 0x6f, 0x2b, 0xee, 0x6c, 0x03, 0x52};
  return fe_from_bytes(b);
}();

const Fe kD2 = [] {
  const std::uint8_t b[32] = {0x59, 0xf1, 0xb2, 0x26, 0x94, 0x9b, 0xd6, 0xeb,
                              0x56, 0xb1, 0x83, 0x82, 0x9a, 0x14, 0xe0, 0x00,
                              0x30, 0xd1, 0xf3, 0xee, 0xf2, 0x80, 0x8e, 0x19,
                              0xe7, 0xfc, 0xdf, 0x56, 0xdc, 0xd9, 0x06, 0x24};
  return fe_from_bytes(b);
}();

const Fe kSqrtM1 = [] {
  const std::uint8_t b[32] = {0xb0, 0xa0, 0x0e, 0x4a, 0x27, 0x1b, 0xee, 0xc4,
                              0x78, 0xe4, 0x2f, 0xad, 0x06, 0x18, 0x43, 0x2f,
                              0xa7, 0xd7, 0xfb, 0x3d, 0x99, 0x00, 0x4d, 0x2b,
                              0x0b, 0xdf, 0xc1, 0x4f, 0x80, 0x24, 0x83, 0x2b};
  return fe_from_bytes(b);
}();

const Fe kBaseX = [] {
  const std::uint8_t b[32] = {0x1a, 0xd5, 0x25, 0x8f, 0x60, 0x2d, 0x56, 0xc9,
                              0xb2, 0xa7, 0x25, 0x95, 0x60, 0xc7, 0x2c, 0x69,
                              0x5c, 0xdc, 0xd6, 0xfd, 0x31, 0xe2, 0xa4, 0xc0,
                              0xfe, 0x53, 0x6e, 0xcd, 0xd3, 0x36, 0x69, 0x21};
  return fe_from_bytes(b);
}();

const Fe kBaseY = [] {
  const std::uint8_t b[32] = {0x58, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66,
                              0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66,
                              0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66,
                              0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66};
  return fe_from_bytes(b);
}();

namespace {

inline void fe_sel(Fe& p, Fe& q, int b) noexcept {
  const std::uint64_t mask = ~(static_cast<std::uint64_t>(b) - 1);
  for (int i = 0; i < 5; ++i) {
    const std::uint64_t t = mask & (p.v[i] ^ q.v[i]);
    p.v[i] ^= t;
    q.v[i] ^= t;
  }
}

}  // namespace

void fe_carry(Fe& o) noexcept {
  std::uint64_t c;
  c = o.v[0] >> 51; o.v[0] &= kMask51; o.v[1] += c;
  c = o.v[1] >> 51; o.v[1] &= kMask51; o.v[2] += c;
  c = o.v[2] >> 51; o.v[2] &= kMask51; o.v[3] += c;
  c = o.v[3] >> 51; o.v[3] &= kMask51; o.v[4] += c;
  c = o.v[4] >> 51; o.v[4] &= kMask51; o.v[0] += 19 * c;
  c = o.v[0] >> 51; o.v[0] &= kMask51; o.v[1] += c;
}

void fe_cswap(Fe& a, Fe& b, int bit) noexcept { fe_sel(a, b, bit); }

void fe_add(Fe& o, const Fe& a, const Fe& b) noexcept {
  for (int i = 0; i < 5; ++i) o.v[i] = a.v[i] + b.v[i];
}

void fe_sub(Fe& o, const Fe& a, const Fe& b) noexcept {
  // a + 2p - b keeps limbs non-negative (inputs < 2^52 after carry).
  o.v[0] = a.v[0] + 0xfffffffffffdaULL - b.v[0];
  o.v[1] = a.v[1] + 0xffffffffffffeULL - b.v[1];
  o.v[2] = a.v[2] + 0xffffffffffffeULL - b.v[2];
  o.v[3] = a.v[3] + 0xffffffffffffeULL - b.v[3];
  o.v[4] = a.v[4] + 0xffffffffffffeULL - b.v[4];
}

namespace {

/// Reduces the 5 wide column sums of a product into 51-bit limbs (shared
/// carry tail of fe_mul and fe_sq). Bounds: mul inputs have limbs < 2^53.4
/// (worst case: fe_sub minuend built on an fe_add result), so each column
/// t_i < 5 * 2^53.4 * 2^57.6 < 2^113.3, every inter-limb carry fits in a
/// u64, and only the final *19 wraparound needs a 128-bit intermediate.
inline void fe_reduce_wide(Fe& o, u128 t0, u128 t1, u128 t2, u128 t3, u128 t4) noexcept {
  std::uint64_t r0, r1, r2, r3, r4, carry;
  r0 = (std::uint64_t)t0 & kMask51; carry = (std::uint64_t)(t0 >> 51);
  t1 += carry;
  r1 = (std::uint64_t)t1 & kMask51; carry = (std::uint64_t)(t1 >> 51);
  t2 += carry;
  r2 = (std::uint64_t)t2 & kMask51; carry = (std::uint64_t)(t2 >> 51);
  t3 += carry;
  r3 = (std::uint64_t)t3 & kMask51; carry = (std::uint64_t)(t3 >> 51);
  t4 += carry;
  r4 = (std::uint64_t)t4 & kMask51;
  // The carry out of t4 can reach ~2^62 at the worst-case input bound, so
  // the *19 wraparound must be computed in 128 bits before the final mask.
  const u128 w0 = (u128)r0 + (u128)(std::uint64_t)(t4 >> 51) * 19;
  r0 = (std::uint64_t)w0 & kMask51;
  r1 += (std::uint64_t)(w0 >> 51);

  o.v[0] = r0;
  o.v[1] = r1;
  o.v[2] = r2;
  o.v[3] = r3;
  o.v[4] = r4;
}

}  // namespace

void fe_mul(Fe& o, const Fe& a, const Fe& b) noexcept {
  const std::uint64_t a0 = a.v[0], a1 = a.v[1], a2 = a.v[2], a3 = a.v[3], a4 = a.v[4];
  const std::uint64_t b0 = b.v[0], b1 = b.v[1], b2 = b.v[2], b3 = b.v[3], b4 = b.v[4];
  const std::uint64_t b1_19 = b1 * 19, b2_19 = b2 * 19, b3_19 = b3 * 19, b4_19 = b4 * 19;

  u128 t0 = (u128)a0 * b0 + (u128)a1 * b4_19 + (u128)a2 * b3_19 + (u128)a3 * b2_19 + (u128)a4 * b1_19;
  u128 t1 = (u128)a0 * b1 + (u128)a1 * b0 + (u128)a2 * b4_19 + (u128)a3 * b3_19 + (u128)a4 * b2_19;
  u128 t2 = (u128)a0 * b2 + (u128)a1 * b1 + (u128)a2 * b0 + (u128)a3 * b4_19 + (u128)a4 * b3_19;
  u128 t3 = (u128)a0 * b3 + (u128)a1 * b2 + (u128)a2 * b1 + (u128)a3 * b0 + (u128)a4 * b4_19;
  u128 t4 = (u128)a0 * b4 + (u128)a1 * b3 + (u128)a2 * b2 + (u128)a3 * b1 + (u128)a4 * b0;

  fe_reduce_wide(o, t0, t1, t2, t3, t4);
}

void fe_sq(Fe& o, const Fe& a) noexcept {
  // Dedicated squaring: 15 64x64 multiplies instead of fe_mul's 25, by
  // folding the symmetric cross terms (2*a_i*a_j) and the *19 wraps.
  const std::uint64_t a0 = a.v[0], a1 = a.v[1], a2 = a.v[2], a3 = a.v[3], a4 = a.v[4];
  const std::uint64_t d0 = a0 * 2, d1 = a1 * 2, d2 = a2 * 2, d3 = a3 * 2;
  const std::uint64_t a3_19 = a3 * 19, a4_19 = a4 * 19;

  u128 t0 = (u128)a0 * a0 + (u128)d1 * a4_19 + (u128)d2 * a3_19;
  u128 t1 = (u128)d0 * a1 + (u128)d2 * a4_19 + (u128)a3 * a3_19;
  u128 t2 = (u128)d0 * a2 + (u128)a1 * a1 + (u128)d3 * a4_19;
  u128 t3 = (u128)d0 * a3 + (u128)d1 * a2 + (u128)a4 * a4_19;
  u128 t4 = (u128)d0 * a4 + (u128)d1 * a3 + (u128)a2 * a2;

  fe_reduce_wide(o, t0, t1, t2, t3, t4);
}

namespace {

/// o = a^(2^n) via n successive squarings (n >= 1).
inline void fe_sqn(Fe& o, const Fe& a, int n) noexcept {
  fe_sq(o, a);
  for (int i = 1; i < n; ++i) fe_sq(o, o);
}

}  // namespace

void fe_inv(Fe& o, const Fe& a) noexcept {
  // a^(p-2) with the standard curve25519 addition chain: 254 squarings and
  // 11 multiplies (the naive square-and-multiply schedule costs ~252 extra
  // multiplies, which dominated ge_pack).
  Fe t0, t1, t2, t3;
  fe_sq(t0, a);         // a^2
  fe_sqn(t1, t0, 2);    // a^8
  fe_mul(t1, t1, a);    // a^9
  fe_mul(t0, t0, t1);   // a^11
  fe_sq(t2, t0);        // a^22
  fe_mul(t1, t1, t2);   // a^31           = a^(2^5 - 1)
  fe_sqn(t2, t1, 5);
  fe_mul(t1, t2, t1);   // a^(2^10 - 1)
  fe_sqn(t2, t1, 10);
  fe_mul(t2, t2, t1);   // a^(2^20 - 1)
  fe_sqn(t3, t2, 20);
  fe_mul(t2, t3, t2);   // a^(2^40 - 1)
  fe_sqn(t2, t2, 10);
  fe_mul(t1, t2, t1);   // a^(2^50 - 1)
  fe_sqn(t2, t1, 50);
  fe_mul(t2, t2, t1);   // a^(2^100 - 1)
  fe_sqn(t3, t2, 100);
  fe_mul(t2, t3, t2);   // a^(2^200 - 1)
  fe_sqn(t2, t2, 50);
  fe_mul(t1, t2, t1);   // a^(2^250 - 1)
  fe_sqn(t1, t1, 5);
  fe_mul(o, t1, t0);    // a^(2^255 - 21) = a^(p - 2)
}

void fe_pow2523(Fe& o, const Fe& a) noexcept {
  // a^((p-5)/8) = a^(2^252 - 3), same chain shape as fe_inv.
  Fe t0, t1, t2;
  fe_sq(t0, a);         // a^2
  fe_sqn(t1, t0, 2);    // a^8
  fe_mul(t1, t1, a);    // a^9
  fe_mul(t0, t0, t1);   // a^11
  fe_sq(t0, t0);        // a^22
  fe_mul(t0, t1, t0);   // a^31           = a^(2^5 - 1)
  fe_sqn(t1, t0, 5);
  fe_mul(t0, t1, t0);   // a^(2^10 - 1)
  fe_sqn(t1, t0, 10);
  fe_mul(t1, t1, t0);   // a^(2^20 - 1)
  fe_sqn(t2, t1, 20);
  fe_mul(t1, t2, t1);   // a^(2^40 - 1)
  fe_sqn(t1, t1, 10);
  fe_mul(t0, t1, t0);   // a^(2^50 - 1)
  fe_sqn(t1, t0, 50);
  fe_mul(t1, t1, t0);   // a^(2^100 - 1)
  fe_sqn(t2, t1, 100);
  fe_mul(t1, t2, t1);   // a^(2^200 - 1)
  fe_sqn(t1, t1, 50);
  fe_mul(t0, t1, t0);   // a^(2^250 - 1)
  fe_sqn(t0, t0, 2);    // a^(2^252 - 4)
  fe_mul(o, t0, a);     // a^(2^252 - 3)
}

namespace {

// ---- Variable-time modular inversion (Bernstein-Yang divsteps) -------------
//
// fe_inv's Fermat chain is 254 *serial* squarings: ~4.3us of pure latency on
// the signature-verify hot path (ge_pack of the recomputed R). For public
// inputs a batched-divstep extended GCD is ~3.5x faster. It is variable time,
// so it must never touch the sign path, where the Z coordinate of r*B is
// correlated with the secret nonce digits (projective-coordinate leaks are a
// known signing attack); constant-time fe_inv remains the default.
//
// Values are signed integers in radix 2^62 (low limbs masked non-negative,
// the top limb carries the sign). Each batch runs 62 divstep iterations on
// the low 62 bits of (f, g) and accumulates them into a 2x2 transition
// matrix, which is then applied once to the full-width state: (f, g) shrink
// toward (+-1, 0) while (d, e) track the Bezout coefficients mod p.

struct Limb62 {
  std::int64_t v[5];
};

struct InvTrans {
  std::int64_t u, v, q, r;
};

constexpr std::int64_t kM62 = static_cast<std::int64_t>(~std::uint64_t{0} >> 2);
constexpr std::int64_t kPrime62[5] = {0x3fffffffffffffedLL, 0x3fffffffffffffffLL,
                                      0x3fffffffffffffffLL, 0x3fffffffffffffffLL,
                                      0x7fLL};
constexpr std::uint64_t kPrimeInv62 = 0x39435e50d79435e5ULL;  // p^-1 mod 2^62

/// Runs 62 divsteps on the low 62 bits of (f, g), recording them in t.
/// Variable time: loop trip counts depend on the bit pattern of g.
std::int64_t inv_divsteps62(std::int64_t eta, std::uint64_t f0, std::uint64_t g0,
                            InvTrans& t) noexcept {
  std::uint64_t u = 1, v = 0, q = 0, r = 1;
  std::uint64_t f = f0, g = g0;
  int i = 62;
  for (;;) {
    // A run of zero bits in g is that many single halving divsteps. The
    // sentinel caps the count at i; only the low i bits of f and g are
    // meaningful from here on (higher bits may wrap harmlessly).
    const int zeros = std::countr_zero(g | (~std::uint64_t{0} << i));
    g >>= zeros;
    u <<= zeros;
    v <<= zeros;
    eta -= zeros;
    i -= zeros;
    if (i == 0) break;
    // g is odd. eta < 0 corresponds to delta > 0 in the divstep definition:
    // swap the roles of f and g (negating the one moved into g).
    if (eta < 0) {
      std::uint64_t tmp;
      eta = -eta;
      tmp = f; f = g; g = 0 - tmp;
      tmp = u; u = q; q = 0 - tmp;
      tmp = v; v = r; r = 0 - tmp;
    }
    // Cancel up to min(eta + 1, i, 6) low bits of g at once by adding the
    // right small multiple of f (w = -g / f mod 2^limit).
    int limit = eta + 1 > i ? i : static_cast<int>(eta) + 1;
    if (limit > 6) limit = 6;
    const std::uint64_t m = ~std::uint64_t{0} >> (64 - limit);
    // f^-1 mod 2^6: one Newton step from f^-1 == f (mod 8) for odd f.
    const std::uint64_t finv = f * (2 - f * f);
    const std::uint64_t w = ((0 - g) * finv) & m;
    g += f * w;
    q += u * w;
    r += v * w;
  }
  t.u = static_cast<std::int64_t>(u);
  t.v = static_cast<std::int64_t>(v);
  t.q = static_cast<std::int64_t>(q);
  t.r = static_cast<std::int64_t>(r);
  return eta;
}

/// (f, g) <- M * (f, g) / 2^62 (exact; the matrix was built so the low
/// 62 bits of both products vanish).
void inv_update_fg(Limb62& f, Limb62& g, const InvTrans& t) noexcept {
  __int128 cf = (__int128)t.u * f.v[0] + (__int128)t.v * g.v[0];
  __int128 cg = (__int128)t.q * f.v[0] + (__int128)t.r * g.v[0];
  cf >>= 62;
  cg >>= 62;
  for (int i = 1; i < 5; ++i) {
    cf += (__int128)t.u * f.v[i] + (__int128)t.v * g.v[i];
    cg += (__int128)t.q * f.v[i] + (__int128)t.r * g.v[i];
    f.v[i - 1] = static_cast<std::int64_t>(cf) & kM62;
    cf >>= 62;
    g.v[i - 1] = static_cast<std::int64_t>(cg) & kM62;
    cg >>= 62;
  }
  f.v[4] = static_cast<std::int64_t>(cf);
  g.v[4] = static_cast<std::int64_t>(cg);
}

/// (d, e) <- M * (d, e) / 2^62 mod p: multiples of p are added to make each
/// product divisible by 2^62 (md, me chosen via p^-1 mod 2^62), keeping
/// |d|, |e| < 2p throughout.
void inv_update_de(Limb62& d, Limb62& e, const InvTrans& t) noexcept {
  const std::int64_t d_sign = d.v[4] >> 63;
  const std::int64_t e_sign = e.v[4] >> 63;
  std::int64_t md = (t.u & d_sign) + (t.v & e_sign);
  std::int64_t me = (t.q & d_sign) + (t.r & e_sign);
  __int128 cd = (__int128)t.u * d.v[0] + (__int128)t.v * e.v[0];
  __int128 ce = (__int128)t.q * d.v[0] + (__int128)t.r * e.v[0];
  md -= static_cast<std::int64_t>(
      (kPrimeInv62 * static_cast<std::uint64_t>(cd) + static_cast<std::uint64_t>(md)) &
      static_cast<std::uint64_t>(kM62));
  me -= static_cast<std::int64_t>(
      (kPrimeInv62 * static_cast<std::uint64_t>(ce) + static_cast<std::uint64_t>(me)) &
      static_cast<std::uint64_t>(kM62));
  cd += (__int128)kPrime62[0] * md;
  ce += (__int128)kPrime62[0] * me;
  cd >>= 62;
  ce >>= 62;
  for (int i = 1; i < 5; ++i) {
    cd += (__int128)t.u * d.v[i] + (__int128)t.v * e.v[i] + (__int128)kPrime62[i] * md;
    ce += (__int128)t.q * d.v[i] + (__int128)t.r * e.v[i] + (__int128)kPrime62[i] * me;
    d.v[i - 1] = static_cast<std::int64_t>(cd) & kM62;
    cd >>= 62;
    e.v[i - 1] = static_cast<std::int64_t>(ce) & kM62;
    ce >>= 62;
  }
  d.v[4] = static_cast<std::int64_t>(cd);
  e.v[4] = static_cast<std::int64_t>(ce);
}

bool limb62_is_zero(const Limb62& a) noexcept {
  return (a.v[0] | a.v[1] | a.v[2] | a.v[3] | a.v[4]) == 0;
}

/// a <- -a (signed radix-2^62).
void limb62_negate(Limb62& a) noexcept {
  std::int64_t carry = 0;
  for (int i = 0; i < 4; ++i) {
    const std::int64_t v = carry - a.v[i];
    a.v[i] = v & kM62;
    carry = v >> 62;
  }
  a.v[4] = carry - a.v[4];
}

/// a <- a + p.
void limb62_add_prime(Limb62& a) noexcept {
  std::int64_t carry = 0;
  for (int i = 0; i < 4; ++i) {
    const std::int64_t v = a.v[i] + kPrime62[i] + carry;
    a.v[i] = v & kM62;
    carry = v >> 62;
  }
  a.v[4] = a.v[4] + kPrime62[4] + carry;
}

/// a <- a - p.
void limb62_sub_prime(Limb62& a) noexcept {
  std::int64_t carry = 0;
  for (int i = 0; i < 4; ++i) {
    const std::int64_t v = a.v[i] - kPrime62[i] + carry;
    a.v[i] = v & kM62;
    carry = v >> 62;
  }
  a.v[4] = a.v[4] - kPrime62[4] + carry;
}

/// True iff a >= p (a must be non-negative).
bool limb62_geq_prime(const Limb62& a) noexcept {
  for (int i = 4; i >= 0; --i) {
    if (a.v[i] > kPrime62[i]) return true;
    if (a.v[i] < kPrime62[i]) return false;
  }
  return true;  // a == p
}

}  // namespace

void fe_inv_vartime(Fe& o, const Fe& a) noexcept {
  ByteArray<32> bytes;
  fe_pack(bytes, a);
  std::uint64_t words[4];
  std::memcpy(words, bytes.data(), 32);  // little-endian host, asserted above

  Limb62 f{{kPrime62[0], kPrime62[1], kPrime62[2], kPrime62[3], kPrime62[4]}};
  Limb62 g{{static_cast<std::int64_t>(words[0] & kM62),
            static_cast<std::int64_t>((words[0] >> 62 | words[1] << 2) & kM62),
            static_cast<std::int64_t>((words[1] >> 60 | words[2] << 4) & kM62),
            static_cast<std::int64_t>((words[2] >> 58 | words[3] << 6) & kM62),
            static_cast<std::int64_t>(words[3] >> 56)}};
  Limb62 d{{0, 0, 0, 0, 0}};
  Limb62 e{{1, 0, 0, 0, 0}};

  // Invariants mod p: a*d == f and a*e == g (up to the shared 2^-62 scale
  // handled inside the updates). 256-bit inputs need at most 12 batches;
  // the cap is an unreachable safety net that falls back to Fermat.
  std::int64_t eta = -1;
  for (int iter = 0; !limb62_is_zero(g); ++iter) {
    if (iter >= 16) {
      fe_inv(o, a);
      return;
    }
    InvTrans t;
    eta = inv_divsteps62(eta, static_cast<std::uint64_t>(f.v[0]),
                         static_cast<std::uint64_t>(g.v[0]), t);
    inv_update_fg(f, g, t);
    inv_update_de(d, e, t);
  }

  // g == 0, so f = +-gcd(a, p): +-1 for a != 0 (and d == 0 when a == 0,
  // matching fe_inv's 0 -> 0 behaviour). a * d == f (mod p), so the answer
  // is d negated when f is negative, normalized into [0, p).
  if (f.v[4] < 0) limb62_negate(d);
  while (d.v[4] < 0) limb62_add_prime(d);
  while (limb62_geq_prime(d)) limb62_sub_prime(d);

  ByteArray<32> out_bytes;
  const std::uint64_t r0 = static_cast<std::uint64_t>(d.v[0]);
  const std::uint64_t r1 = static_cast<std::uint64_t>(d.v[1]);
  const std::uint64_t r2 = static_cast<std::uint64_t>(d.v[2]);
  const std::uint64_t r3 = static_cast<std::uint64_t>(d.v[3]);
  const std::uint64_t r4 = static_cast<std::uint64_t>(d.v[4]);
  const std::uint64_t w0 = r0 | (r1 << 62);
  const std::uint64_t w1 = (r1 >> 2) | (r2 << 60);
  const std::uint64_t w2 = (r2 >> 4) | (r3 << 58);
  const std::uint64_t w3 = (r3 >> 6) | (r4 << 56);
  const std::uint64_t out_words[4] = {w0, w1, w2, w3};
  std::memcpy(out_bytes.data(), out_words, 32);
  fe_unpack(o, out_bytes);
}

void fe_pack(ByteArray<32>& out, const Fe& a) noexcept {
  Fe t = a;
  fe_carry(t);
  fe_carry(t);

  // Canonicalize: conditionally subtract p (twice to be safe).
  for (int pass = 0; pass < 2; ++pass) {
    std::uint64_t m[5];
    std::uint64_t borrow = 0;
    const std::uint64_t p0 = kMask51 - 18;  // 2^51 - 19
    m[0] = t.v[0] - p0;
    borrow = (t.v[0] < p0) ? 1 : 0;
    for (int i = 1; i < 5; ++i) {
      const std::uint64_t sub = kMask51 + borrow;
      m[i] = t.v[i] - sub;
      borrow = (t.v[i] < sub) ? 1 : 0;
    }
    // borrow == 0 means t >= p: take m. Constant-time select.
    const std::uint64_t keep = 0 - borrow;  // all-ones if borrow (keep t)
    for (int i = 0; i < 5; ++i) {
      t.v[i] = (t.v[i] & keep) | ((m[i] & kMask51) & ~keep);
    }
  }

  // Pack 5x51 bits into 32 bytes.
  std::uint64_t w0 = t.v[0] | (t.v[1] << 51);
  std::uint64_t w1 = (t.v[1] >> 13) | (t.v[2] << 38);
  std::uint64_t w2 = (t.v[2] >> 26) | (t.v[3] << 25);
  std::uint64_t w3 = (t.v[3] >> 39) | (t.v[4] << 12);
  const std::uint64_t words[4] = {w0, w1, w2, w3};
  for (int w = 0; w < 4; ++w) {
    for (int i = 0; i < 8; ++i) {
      out[8 * w + i] = static_cast<std::uint8_t>(words[w] >> (8 * i));
    }
  }
}

void fe_unpack(Fe& out, const ByteArray<32>& in) noexcept {
  std::uint8_t b[32];
  std::memcpy(b, in.data(), 32);
  out = fe_from_bytes(b);
}

bool fe_equal(const Fe& a, const Fe& b) noexcept {
  ByteArray<32> pa, pb;
  fe_pack(pa, a);
  fe_pack(pb, b);
  return ct_equal(pa, pb);
}

int fe_parity(const Fe& a) noexcept {
  ByteArray<32> packed;
  fe_pack(packed, a);
  return packed[0] & 1;
}

GroupElement ge_identity() noexcept {
  GroupElement p;
  p.x = kZero;
  p.y = kOne;
  p.z = kOne;
  p.t = kZero;
  return p;
}

GroupElement ge_base() noexcept {
  GroupElement p;
  p.x = kBaseX;
  p.y = kBaseY;
  p.z = kOne;
  fe_mul(p.t, kBaseX, kBaseY);
  return p;
}

void ge_add(GroupElement& p, const GroupElement& q) noexcept {
  Fe a, b, c, d, t, e, f, g, h;
  fe_sub(a, p.y, p.x);
  fe_sub(t, q.y, q.x);
  fe_mul(a, a, t);
  fe_add(b, p.x, p.y);
  fe_add(t, q.x, q.y);
  fe_mul(b, b, t);
  fe_mul(c, p.t, q.t);
  fe_mul(c, c, kD2);
  fe_mul(d, p.z, q.z);
  fe_add(d, d, d);
  fe_sub(e, b, a);
  fe_sub(f, d, c);
  fe_add(g, d, c);
  fe_add(h, b, a);
  fe_mul(p.x, e, f);
  fe_mul(p.y, h, g);
  fe_mul(p.z, g, f);
  fe_mul(p.t, e, h);
}

namespace {

void ge_cswap(GroupElement& p, GroupElement& q, int bit) noexcept {
  fe_sel(p.x, q.x, bit);
  fe_sel(p.y, q.y, bit);
  fe_sel(p.z, q.z, bit);
  fe_sel(p.t, q.t, bit);
}

}  // namespace

void ge_scalarmult(GroupElement& r, const GroupElement& q_in, const ByteArray<32>& scalar) noexcept {
  GroupElement q = q_in;
  r = ge_identity();
  for (int i = 255; i >= 0; --i) {
    const int b = (scalar[i / 8] >> (i & 7)) & 1;
    ge_cswap(r, q, b);
    ge_add(q, r);
    ge_add(r, r);
    ge_cswap(r, q, b);
  }
}

namespace {

// ---- Specialized point representations (ref10-style) -----------------------
//
// The unified extended-coordinate ge_add above is complete but costs 9 fe_mul.
// The hot paths below use the cheaper dedicated forms:
//   GeP1p1  "completed" point (X:Y:Z:T); the actual point is (X/Z, Y/T) and a
//           3-4 fe_mul conversion lands it back in P2/P3.
//   Niels   affine precomputed point (y+x, y-x, 2dxy): mixed addition needs
//           only 3 fe_mul plus the conversion.
//   Cached  projective precomputed point (Y+X, Y-X, Z, 2dT): 4 fe_mul adds.
// All formulas are the complete a=-1 twisted Edwards set, so identity and
// low-order inputs need no special-casing.
//
// fe_sub range discipline: the subtrahend is always a fe_mul/fe_sq output
// (limbs < 2^52), matching the 2p offsets baked into fe_sub.

struct GeP1p1 {
  Fe x, y, z, t;
};

// Affine precomputed form: declared in the header as GeNiels so callers can
// hold precomputed window tables (DblScalarPrecomp).
using Niels = GeNiels;

struct Cached {
  Fe yplusx, yminusx, z, t2d;
};

/// r = 2 * (x : y : z); the extended t coordinate of the input is not needed.
void ge_dbl(GeP1p1& r, const Fe& x, const Fe& y, const Fe& z) noexcept {
  Fe xx, yy, t0;
  fe_sq(xx, x);
  fe_sq(yy, y);
  fe_sq(r.t, z);
  fe_add(r.t, r.t, r.t);  // 2ZZ
  fe_add(t0, x, y);
  fe_sq(t0, t0);          // (X+Y)^2
  fe_sub(t0, t0, xx);
  fe_sub(r.x, t0, yy);    // 2XY
  fe_add(r.y, yy, xx);    // YY+XX
  fe_sub(r.z, yy, xx);    // YY-XX
  fe_sub(r.t, r.t, yy);
  fe_add(r.t, r.t, xx);   // 2ZZ-YY+XX
}

/// r = p + q with q in affine Niels form (3 fe_mul).
void ge_madd(GeP1p1& r, const GroupElement& p, const Niels& q) noexcept {
  Fe t0;
  fe_add(r.x, p.y, p.x);
  fe_sub(r.y, p.y, p.x);
  fe_mul(r.z, r.x, q.yplusx);   // A = (Y1+X1)(y2+x2)
  fe_mul(r.y, r.y, q.yminusx);  // B = (Y1-X1)(y2-x2)
  fe_mul(r.t, q.xy2d, p.t);     // C = 2d*x2*y2*T1
  fe_add(t0, p.z, p.z);         // D = 2Z1
  fe_sub(r.x, r.z, r.y);        // A-B
  fe_add(r.y, r.z, r.y);        // A+B
  fe_add(r.z, t0, r.t);         // D+C
  fe_sub(r.t, t0, r.t);         // D-C
}

/// r = p - q with q in affine Niels form.
void ge_msub(GeP1p1& r, const GroupElement& p, const Niels& q) noexcept {
  Fe t0;
  fe_add(r.x, p.y, p.x);
  fe_sub(r.y, p.y, p.x);
  fe_mul(r.z, r.x, q.yminusx);
  fe_mul(r.y, r.y, q.yplusx);
  fe_mul(r.t, q.xy2d, p.t);
  fe_add(t0, p.z, p.z);
  fe_sub(r.x, r.z, r.y);
  fe_add(r.y, r.z, r.y);
  fe_sub(r.z, t0, r.t);
  fe_add(r.t, t0, r.t);
}

/// r = p + q with q in projective Cached form (4 fe_mul).
void ge_add_cached(GeP1p1& r, const GroupElement& p, const Cached& q) noexcept {
  Fe t0;
  fe_add(r.x, p.y, p.x);
  fe_sub(r.y, p.y, p.x);
  fe_mul(r.z, r.x, q.yplusx);
  fe_mul(r.y, r.y, q.yminusx);
  fe_mul(r.t, q.t2d, p.t);
  fe_mul(r.x, p.z, q.z);
  fe_add(t0, r.x, r.x);   // 2*Z1*Z2
  fe_sub(r.x, r.z, r.y);
  fe_add(r.y, r.z, r.y);
  fe_add(r.z, t0, r.t);
  fe_sub(r.t, t0, r.t);
}

/// r = p - q with q in projective Cached form.
void ge_sub_cached(GeP1p1& r, const GroupElement& p, const Cached& q) noexcept {
  Fe t0;
  fe_add(r.x, p.y, p.x);
  fe_sub(r.y, p.y, p.x);
  fe_mul(r.z, r.x, q.yminusx);
  fe_mul(r.y, r.y, q.yplusx);
  fe_mul(r.t, q.t2d, p.t);
  fe_mul(r.x, p.z, q.z);
  fe_add(t0, r.x, r.x);
  fe_sub(r.x, r.z, r.y);
  fe_add(r.y, r.z, r.y);
  fe_sub(r.z, t0, r.t);
  fe_add(r.t, t0, r.t);
}

/// P1P1 -> full extended coordinates (4 fe_mul).
void p1p1_to_p3(GroupElement& r, const GeP1p1& p) noexcept {
  fe_mul(r.x, p.x, p.t);
  fe_mul(r.y, p.y, p.z);
  fe_mul(r.z, p.z, p.t);
  fe_mul(r.t, p.x, p.y);
}

/// P1P1 -> projective only; r.t is left stale and must not be read.
void p1p1_to_p2(GroupElement& r, const GeP1p1& p) noexcept {
  fe_mul(r.x, p.x, p.t);
  fe_mul(r.y, p.y, p.z);
  fe_mul(r.z, p.z, p.t);
}

Cached to_cached(const GroupElement& p) noexcept {
  Cached c;
  fe_add(c.yplusx, p.y, p.x);
  fe_sub(c.yminusx, p.y, p.x);
  c.z = p.z;
  fe_mul(c.t2d, p.t, kD2);
  return c;
}

/// Normalizes a point to affine Niels form (costs one fe_inv).
Niels to_niels(const GroupElement& p) noexcept {
  Fe zi, ax, ay;
  fe_inv(zi, p.z);
  fe_mul(ax, p.x, zi);
  fe_mul(ay, p.y, zi);
  Niels n;
  fe_add(n.yplusx, ay, ax);
  fe_carry(n.yplusx);
  fe_sub(n.yminusx, ay, ax);
  fe_carry(n.yminusx);
  fe_mul(n.xy2d, ax, ay);
  fe_mul(n.xy2d, n.xy2d, kD2);
  return n;
}

// ---- Constant-time helpers for the fixed-base comb -------------------------

/// All-ones mask iff a == b, branch-free: (d | -d) >> 63 is 1 iff d != 0.
inline std::uint64_t ct_eq_mask(std::uint64_t a, std::uint64_t b) noexcept {
  const std::uint64_t d = a ^ b;
  return std::uint64_t{0} - (1 ^ ((d | (std::uint64_t{0} - d)) >> 63));
}

inline void fe_cmov(Fe& r, const Fe& a, std::uint64_t mask) noexcept {
  for (int i = 0; i < 5; ++i) r.v[i] ^= mask & (r.v[i] ^ a.v[i]);
}

/// comb_table()[i][j] = (j+1) * 16^(2i) * B in affine Niels form.
/// Built lazily, once per process (thread-safe magic static).
using CombRow = Niels[8];
const CombRow* comb_table() noexcept {
  static const CombRow* table = [] {
    static Niels t[32][8];
    GroupElement cur = ge_base();  // 16^(2i) * B
    for (int i = 0; i < 32; ++i) {
      GroupElement m = cur;  // (j+1) * 16^(2i) * B
      for (int j = 0; j < 8; ++j) {
        t[i][j] = to_niels(m);
        ge_add(m, cur);
      }
      for (int d = 0; d < 8; ++d) ge_add(cur, cur);  // cur *= 256
    }
    return &t[0];
  }();
  return table;
}

/// Constant-time lookup of digit * 16^(2*pos) * B for digit in [-8, 8]:
/// scans the whole row with cmovs and conditionally negates.
void comb_select(Niels& t, int pos, int digit) noexcept {
  const std::uint32_t ud = static_cast<std::uint32_t>(digit);
  const std::uint32_t sign32 = ud >> 31;                       // 1 iff digit < 0
  const std::uint32_t m32 = std::uint32_t{0} - sign32;
  const std::uint32_t babs = (ud ^ m32) - m32;                 // |digit|
  const CombRow* comb = comb_table();

  t.yplusx = kOne;
  t.yminusx = kOne;
  t.xy2d = kZero;
  for (std::uint32_t j = 0; j < 8; ++j) {
    const std::uint64_t mask = ct_eq_mask(babs, j + 1);
    fe_cmov(t.yplusx, comb[pos][j].yplusx, mask);
    fe_cmov(t.yminusx, comb[pos][j].yminusx, mask);
    fe_cmov(t.xy2d, comb[pos][j].xy2d, mask);
  }
  // Conditional negation: -P swaps (y+x, y-x) and negates 2dxy.
  Niels minus;
  minus.yplusx = t.yminusx;
  minus.yminusx = t.yplusx;
  fe_sub(minus.xy2d, kZero, t.xy2d);
  fe_carry(minus.xy2d);
  const std::uint64_t nmask = std::uint64_t{0} - std::uint64_t{sign32};
  fe_cmov(t.yplusx, minus.yplusx, nmask);
  fe_cmov(t.yminusx, minus.yminusx, nmask);
  fe_cmov(t.xy2d, minus.xy2d, nmask);
}

// ---- Variable-time machinery (verify-side: public inputs only) -------------

/// Recodes a 256-bit scalar into sliding-window NAF: at most one nonzero odd
/// digit |d| <= 2^(w-1)-1 in any w consecutive positions. Variable time.
void slide(std::int16_t* r, const std::uint8_t* a, int w) noexcept {
  const int bound = (1 << (w - 1)) - 1;  // w = 9 digits reach +-255: int16
  for (int i = 0; i < 256; ++i) r[i] = static_cast<std::int16_t>(1 & (a[i >> 3] >> (i & 7)));
  for (int i = 0; i < 256; ++i) {
    if (!r[i]) continue;
    for (int b = 1; b <= w - 1 && i + b < 256; ++b) {
      if (!r[i + b]) continue;
      if (r[i] + (r[i + b] << b) <= bound) {
        r[i] = static_cast<std::int16_t>(r[i] + (r[i + b] << b));
        r[i + b] = 0;
      } else if (r[i] - (r[i + b] << b) >= -bound) {
        r[i] = static_cast<std::int16_t>(r[i] - (r[i + b] << b));
        for (int h = i + b; h < 256; ++h) {
          if (!r[h]) {
            r[h] = 1;
            break;
          }
          r[h] = 0;
        }
      } else {
        break;
      }
    }
  }
}

/// bnaf_table()[j] = (2j+1) * B in affine Niels form (odd multiples up to
/// 255*B for the width-9 sliding window over the fixed base). 128 entries
/// (~15 KiB) cut the average add count from 253/9 to 253/10; the table is
/// static and shared, so the one-time cost amortizes away.
const Niels* bnaf_table() noexcept {
  static const Niels* table = [] {
    static Niels t[128];
    GroupElement b2 = ge_base();
    ge_add(b2, ge_base());  // 2B
    GroupElement cur = ge_base();
    for (int j = 0; j < 128; ++j) {
      t[j] = to_niels(cur);
      ge_add(cur, b2);
    }
    return &t[0];
  }();
  return table;
}

}  // namespace

void ge_scalarmult_base(GroupElement& r, const ByteArray<32>& scalar) noexcept {
  // Signed windowed comb (ref10 layout): the scalar becomes 64 signed
  // radix-16 digits; odd digit positions are accumulated first, the sum is
  // multiplied by 16 with four doublings, then even positions are added.
  // 64 mixed additions + 4 doublings, vs. ~255 unified additions for the
  // old per-bit table walk. Table lookups are constant-time cmov scans and
  // the digit scratch is wiped: the scalar is a signing/commitment secret.
  signed char e[64];
  for (int i = 0; i < 32; ++i) {
    e[2 * i] = static_cast<signed char>(scalar[i] & 15);
    e[2 * i + 1] = static_cast<signed char>((scalar[i] >> 4) & 15);
  }
  signed char carry = 0;
  for (int i = 0; i < 63; ++i) {
    e[i] = static_cast<signed char>(e[i] + carry);
    carry = static_cast<signed char>((e[i] + 8) >> 4);
    e[i] = static_cast<signed char>(e[i] - (carry << 4));
  }
  e[63] = static_cast<signed char>(e[63] + carry);  // in [-8, 8]; no carry out for scalars < 2^255

  r = ge_identity();
  Niels t;
  GeP1p1 s;
  for (int i = 1; i < 64; i += 2) {
    comb_select(t, i / 2, e[i]);
    ge_madd(s, r, t);
    p1p1_to_p3(r, s);
  }
  GroupElement u;
  ge_dbl(s, r.x, r.y, r.z);
  p1p1_to_p2(u, s);
  ge_dbl(s, u.x, u.y, u.z);
  p1p1_to_p2(u, s);
  ge_dbl(s, u.x, u.y, u.z);
  p1p1_to_p2(u, s);
  ge_dbl(s, u.x, u.y, u.z);
  p1p1_to_p3(r, s);
  for (int i = 0; i < 64; i += 2) {
    comb_select(t, i / 2, e[i]);
    ge_madd(s, r, t);
    p1p1_to_p3(r, s);
  }
  secure_wipe(e, sizeof e);
  secure_wipe(&t, sizeof t);
  secure_wipe(&s, sizeof s);
}

namespace {

inline void table_add(GeP1p1& s, const GroupElement& v, const Cached& e) noexcept {
  ge_add_cached(s, v, e);
}
inline void table_sub(GeP1p1& s, const GroupElement& v, const Cached& e) noexcept {
  ge_sub_cached(s, v, e);
}
inline void table_add(GeP1p1& s, const GroupElement& v, const Niels& e) noexcept {
  ge_madd(s, v, e);
}
inline void table_sub(GeP1p1& s, const GroupElement& v, const Niels& e) noexcept {
  ge_msub(s, v, e);
}

/// Shared Strauss (Shamir's trick) ladder: one doubling chain for a*P + b*B,
/// width-5 sliding-window NAF digits for the per-call point P against `ai`
/// (projective Cached for one-shot calls, affine Niels for precomputed
/// tables) and width-9 digits against the static odd-multiples table for B.
/// Variable time: only for public inputs (signature verification).
template <typename ATable>
void strauss_loop(GroupElement& r, const std::int16_t* aslide, const ATable* ai,
                  const std::int16_t* bslide) noexcept {
  const Niels* bn = bnaf_table();

  int i = 255;
  while (i >= 0 && !aslide[i] && !bslide[i]) --i;
  if (i < 0) {
    r = ge_identity();
    return;
  }

  // The accumulator starts as the identity, written directly in P1P1 form
  // ((0:1:1:1) completes to the extended identity (0:1:1:0)), so the top
  // digit position skips its doubling -- doubling the identity is a no-op.
  GeP1p1 s{kZero, kOne, kOne, kOne};
  GroupElement u, v;
  bool first = true;
  for (; i >= 0; --i) {
    if (!first) {
      p1p1_to_p2(u, s);
      ge_dbl(s, u.x, u.y, u.z);
    }
    first = false;
    if (aslide[i] > 0) {
      p1p1_to_p3(v, s);
      table_add(s, v, ai[aslide[i] / 2]);
    } else if (aslide[i] < 0) {
      p1p1_to_p3(v, s);
      table_sub(s, v, ai[(-aslide[i]) / 2]);
    }
    if (bslide[i] > 0) {
      p1p1_to_p3(v, s);
      ge_madd(s, v, bn[bslide[i] / 2]);
    } else if (bslide[i] < 0) {
      p1p1_to_p3(v, s);
      ge_msub(s, v, bn[(-bslide[i]) / 2]);
    }
  }
  p1p1_to_p3(r, s);
}

/// Extended-coordinate odd multiples P, 3P, ..., 15P of p.
void odd_multiples(GroupElement (&mul)[8], const GroupElement& p) noexcept {
  GeP1p1 st;
  GroupElement p2;
  ge_dbl(st, p.x, p.y, p.z);
  p1p1_to_p3(p2, st);
  const Cached c2 = to_cached(p2);
  mul[0] = p;
  for (int j = 1; j < 8; ++j) {
    ge_add_cached(st, mul[j - 1], c2);
    p1p1_to_p3(mul[j], st);
  }
}

}  // namespace

void ge_double_scalarmult_vartime(GroupElement& r, const ByteArray<32>& a, const GroupElement& p,
                                  const ByteArray<32>& b) noexcept {
  std::int16_t aslide[256];
  std::int16_t bslide[256];
  slide(aslide, a.data(), 5);
  slide(bslide, b.data(), 9);

  // One-shot call: keep the window table projective (Cached); normalizing it
  // to affine would cost an inversion that a single multiplication cannot
  // amortize.
  GroupElement mul[8];
  odd_multiples(mul, p);
  Cached ai[8];
  for (int j = 0; j < 8; ++j) ai[j] = to_cached(mul[j]);
  strauss_loop(r, aslide, ai, bslide);
}

void ge_dblscal_precompute(DblScalarPrecomp& pre, const GroupElement& p) noexcept {
  // Normalize the odd multiples to affine Niels form with one Montgomery
  // batched vartime inversion. Repeat verifiers (same public key) then pay
  // 3 fe_mul per A-side addition instead of 4 and skip the per-call table
  // build entirely.
  GroupElement mul[8];
  odd_multiples(mul, p);

  Fe prod[8];  // prod[j] = Z_0 * ... * Z_j
  prod[0] = mul[0].z;
  for (int j = 1; j < 8; ++j) fe_mul(prod[j], prod[j - 1], mul[j].z);
  Fe inv;  // running inverse of the suffix product
  fe_inv_vartime(inv, prod[7]);

  for (int j = 7; j >= 0; --j) {
    Fe zi = inv;  // 1 / Z_j
    if (j > 0) {
      fe_mul(zi, inv, prod[j - 1]);
      fe_mul(inv, inv, mul[j].z);
    }
    Fe x, y, t;
    fe_mul(x, mul[j].x, zi);
    fe_mul(y, mul[j].y, zi);
    GeNiels& n = pre.multiples[j];
    fe_add(n.yplusx, y, x);
    fe_sub(n.yminusx, y, x);
    fe_mul(t, x, y);
    fe_mul(n.xy2d, t, kD2);
  }
}

void ge_double_scalarmult_vartime_pre(GroupElement& r, const ByteArray<32>& a,
                                      const DblScalarPrecomp& pre,
                                      const ByteArray<32>& b) noexcept {
  std::int16_t aslide[256];
  std::int16_t bslide[256];
  slide(aslide, a.data(), 5);
  slide(bslide, b.data(), 9);
  strauss_loop(r, aslide, pre.multiples, bslide);
}

void ge_scalarmult_vartime(GroupElement& r, const GroupElement& q, const ByteArray<32>& scalar) noexcept {
  const ByteArray<32> zero{};
  ge_double_scalarmult_vartime(r, scalar, q, zero);
}

bool ge_is_canonical(const ByteArray<32>& encoded) noexcept {
  // The y encoding (sign bit masked off) must be < p = 2^255 - 19; the only
  // non-canonical values are p..2^255-1, i.e. 0x7fff...ffed + [0, 18].
  if ((encoded[31] & 0x7f) != 0x7f) return true;
  for (int i = 30; i >= 1; --i) {
    if (encoded[i] != 0xff) return true;
  }
  return encoded[0] < 0xed;
}

ByteArray<32> ge_pack(const GroupElement& p) noexcept {
  Fe zi, tx, ty;
  fe_inv(zi, p.z);
  fe_mul(tx, p.x, zi);
  fe_mul(ty, p.y, zi);
  ByteArray<32> out;
  fe_pack(out, ty);
  out[31] = static_cast<std::uint8_t>(out[31] ^ (fe_parity(tx) << 7));
  return out;
}

ByteArray<32> ge_pack_vartime(const GroupElement& p) noexcept {
  Fe zi, tx, ty;
  fe_inv_vartime(zi, p.z);
  fe_mul(tx, p.x, zi);
  fe_mul(ty, p.y, zi);
  ByteArray<32> out;
  fe_pack(out, ty);
  out[31] = static_cast<std::uint8_t>(out[31] ^ (fe_parity(tx) << 7));
  return out;
}

bool ge_unpack(GroupElement& out, const ByteArray<32>& encoded, bool negate) noexcept {
  Fe t, chk, num, den, den2, den4, den6;
  out.z = kOne;
  fe_unpack(out.y, encoded);

  // Recover x from y: x^2 = (y^2 - 1) / (d y^2 + 1).
  fe_sq(num, out.y);
  fe_mul(den, num, kD);
  fe_sub(num, num, out.z);
  fe_add(den, out.z, den);

  fe_sq(den2, den);
  fe_sq(den4, den2);
  fe_mul(den6, den4, den2);
  fe_mul(t, den6, num);
  fe_mul(t, t, den);

  fe_pow2523(t, t);
  fe_mul(t, t, num);
  fe_mul(t, t, den);
  fe_mul(t, t, den);
  fe_mul(out.x, t, den);

  fe_sq(chk, out.x);
  fe_mul(chk, chk, den);
  if (!fe_equal(chk, num)) fe_mul(out.x, out.x, kSqrtM1);

  fe_sq(chk, out.x);
  fe_mul(chk, chk, den);
  if (!fe_equal(chk, num)) return false;

  const int want_negative = encoded[31] >> 7;
  int flip = (fe_parity(out.x) != want_negative) ? 1 : 0;
  if (negate) flip ^= 1;
  if (flip) fe_sub(out.x, kZero, out.x);

  fe_mul(out.t, out.x, out.y);
  return true;
}

bool ge_equal(const GroupElement& a, const GroupElement& b) noexcept {
  const ByteArray<32> pa = ge_pack(a);
  const ByteArray<32> pb = ge_pack(b);
  return ct_equal(pa, pb);
}

namespace {

// ---- Scalar reduction mod L over 64-bit limbs ------------------------------
//
// L = 2^252 + 27742317777372353535851937790883648493. A 512-bit value is
// reduced with one constant-time Barrett step using mu = floor(2^512 / L):
// q = floor(x*mu / 2^512) satisfies floor(x/L) - 2 <= q <= floor(x/L), so
// r = x - q*L lands in [0, 3L) and two conditional subtractions finish.
// All loops have fixed trip counts and the subtractions select via masks;
// scalar inputs here include signing nonces, so this path must stay
// constant-time (unlike verification's point arithmetic).

constexpr std::uint64_t kOrderL[4] = {0x5812631a5cf5d3edULL, 0x14def9dea2f79cd6ULL,
                                      0, 0x1000000000000000ULL};
// floor(2^512 / L); validated against L in the scalar unit tests.
constexpr std::uint64_t kBarrettMu[5] = {0xed9ce5a30a2c131bULL, 0x2106215d086329a7ULL,
                                         0xffffffffffffffebULL, 0xffffffffffffffffULL,
                                         0x000000000000000fULL};

/// Constant-time r -= L if r >= L (4 limbs, little-endian).
inline void sc_csub_order(std::uint64_t r[4]) noexcept {
  std::uint64_t d[4];
  std::uint64_t borrow = 0;
  for (int i = 0; i < 4; ++i) {
    const u128 t = (u128)r[i] - kOrderL[i] - borrow;
    d[i] = (std::uint64_t)t;
    borrow = (std::uint64_t)(t >> 64) & 1;
  }
  // borrow == 1 means r < L: keep r. Otherwise take the difference.
  const std::uint64_t keep = std::uint64_t{0} - borrow;
  for (int i = 0; i < 4; ++i) r[i] = (r[i] & keep) | (d[i] & ~keep);
}

/// Reduces the 512-bit little-endian limb value x mod L into 32 bytes.
void sc_reduce512(std::uint8_t out[32], const std::uint64_t x[8]) noexcept {
  // prod = x * mu, full 13-limb schoolbook product.
  std::uint64_t prod[13] = {};
  for (int j = 0; j < 5; ++j) {
    u128 carry = 0;
    for (int i = 0; i < 8; ++i) {
      carry += (u128)x[i] * kBarrettMu[j] + prod[i + j];
      prod[i + j] = (std::uint64_t)carry;
      carry >>= 64;
    }
    prod[8 + j] = (std::uint64_t)carry;
  }
  // q = floor(x*mu / 2^512) is prod[8..12]. Only the low five limbs of q*L
  // matter: r = x - q*L < 3L < 2^255, and truncated arithmetic mod 2^320
  // yields it exactly.
  const std::uint64_t* q = prod + 8;
  std::uint64_t ql[5] = {};
  for (int j = 0; j < 4; ++j) {
    u128 carry = 0;
    for (int i = 0; i + j < 5; ++i) {
      carry += (u128)q[i] * kOrderL[j] + ql[i + j];
      ql[i + j] = (std::uint64_t)carry;
      carry >>= 64;
    }
  }
  std::uint64_t r[5];
  std::uint64_t borrow = 0;
  for (int i = 0; i < 5; ++i) {
    const u128 t = (u128)x[i] - ql[i] - borrow;
    r[i] = (std::uint64_t)t;
    borrow = (std::uint64_t)(t >> 64) & 1;
  }
  sc_csub_order(r);
  sc_csub_order(r);
  for (int i = 0; i < 32; ++i)
    out[i] = static_cast<std::uint8_t>(r[i / 8] >> (8 * (i % 8)));
  // Reduction scratch is derived from signing nonces on the sign path.
  secure_wipe(prod, sizeof prod);
  secure_wipe(ql, sizeof ql);
  secure_wipe(r, sizeof r);
}

}  // namespace

Scalar scalar_reduce64(const ByteArray<64>& wide) noexcept {
  std::uint64_t x[8];
  std::memcpy(x, wide.data(), 64);  // little-endian host, asserted above
  Scalar out;
  sc_reduce512(out.data(), x);
  secure_wipe(x, sizeof x);
  return out;
}

Scalar scalar_add(const Scalar& a, const Scalar& b) noexcept {
  std::uint64_t x[8] = {};
  std::uint64_t al[4], bl[4];
  std::memcpy(al, a.data(), 32);
  std::memcpy(bl, b.data(), 32);
  u128 carry = 0;
  for (int i = 0; i < 4; ++i) {
    carry += (u128)al[i] + bl[i];
    x[i] = (std::uint64_t)carry;
    carry >>= 64;
  }
  x[4] = (std::uint64_t)carry;
  Scalar out;
  sc_reduce512(out.data(), x);
  secure_wipe(x, sizeof x);
  secure_wipe(al, sizeof al);
  secure_wipe(bl, sizeof bl);
  return out;
}

Scalar scalar_mul(const Scalar& a, const Scalar& b) noexcept {
  return scalar_muladd(a, b, scalar_from_u64(0));
}

Scalar scalar_muladd(const Scalar& a, const Scalar& b, const Scalar& c) noexcept {
  std::uint64_t al[4], bl[4], cl[4], x[8] = {};
  std::memcpy(al, a.data(), 32);
  std::memcpy(bl, b.data(), 32);
  std::memcpy(cl, c.data(), 32);
  for (int j = 0; j < 4; ++j) {
    u128 carry = 0;
    for (int i = 0; i < 4; ++i) {
      carry += (u128)al[i] * bl[j] + x[i + j];
      x[i + j] = (std::uint64_t)carry;
      carry >>= 64;
    }
    x[4 + j] = (std::uint64_t)carry;
  }
  // x += c; a*b + c < L^2 + L fits comfortably in 512 bits.
  u128 carry = 0;
  for (int i = 0; i < 4; ++i) {
    carry += (u128)x[i] + cl[i];
    x[i] = (std::uint64_t)carry;
    carry >>= 64;
  }
  for (int i = 4; i < 8; ++i) {  // fixed trip count: carry is secret-derived
    carry += x[i];
    x[i] = (std::uint64_t)carry;
    carry >>= 64;
  }
  Scalar out;
  sc_reduce512(out.data(), x);
  secure_wipe(al, sizeof al);
  secure_wipe(bl, sizeof bl);
  secure_wipe(cl, sizeof cl);
  secure_wipe(x, sizeof x);
  return out;
}

Scalar scalar_from_u64(std::uint64_t v) noexcept {
  Scalar out{};
  for (int i = 0; i < 8; ++i) out[i] = static_cast<std::uint8_t>(v >> (8 * i));
  return out;
}

}  // namespace dauth::crypto::curve25519
