#include "crypto/curve25519.h"

#include <cstring>

namespace dauth::crypto::curve25519 {
namespace {

constexpr std::uint64_t kMask51 = (std::uint64_t{1} << 51) - 1;

using u128 = unsigned __int128;

inline std::uint64_t load_le64(const std::uint8_t* p) noexcept {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{p[i]} << (8 * i);
  return v;
}

Fe fe_from_bytes(const std::uint8_t (&b)[32]) noexcept {
  Fe r;
  r.v[0] = load_le64(b + 0) & kMask51;
  r.v[1] = (load_le64(b + 6) >> 3) & kMask51;
  r.v[2] = (load_le64(b + 12) >> 6) & kMask51;
  r.v[3] = (load_le64(b + 19) >> 1) & kMask51;
  r.v[4] = (load_le64(b + 24) >> 12) & kMask51;
  return r;
}

}  // namespace

const Fe kZero = {{0, 0, 0, 0, 0}};
const Fe kOne = {{1, 0, 0, 0, 0}};

// Constants from RFC 7748/8032, little-endian byte encodings.
const Fe kD = [] {
  const std::uint8_t b[32] = {0xa3, 0x78, 0x59, 0x13, 0xca, 0x4d, 0xeb, 0x75,
                              0xab, 0xd8, 0x41, 0x41, 0x4d, 0x0a, 0x70, 0x00,
                              0x98, 0xe8, 0x79, 0x77, 0x79, 0x40, 0xc7, 0x8c,
                              0x73, 0xfe, 0x6f, 0x2b, 0xee, 0x6c, 0x03, 0x52};
  return fe_from_bytes(b);
}();

const Fe kD2 = [] {
  const std::uint8_t b[32] = {0x59, 0xf1, 0xb2, 0x26, 0x94, 0x9b, 0xd6, 0xeb,
                              0x56, 0xb1, 0x83, 0x82, 0x9a, 0x14, 0xe0, 0x00,
                              0x30, 0xd1, 0xf3, 0xee, 0xf2, 0x80, 0x8e, 0x19,
                              0xe7, 0xfc, 0xdf, 0x56, 0xdc, 0xd9, 0x06, 0x24};
  return fe_from_bytes(b);
}();

const Fe kSqrtM1 = [] {
  const std::uint8_t b[32] = {0xb0, 0xa0, 0x0e, 0x4a, 0x27, 0x1b, 0xee, 0xc4,
                              0x78, 0xe4, 0x2f, 0xad, 0x06, 0x18, 0x43, 0x2f,
                              0xa7, 0xd7, 0xfb, 0x3d, 0x99, 0x00, 0x4d, 0x2b,
                              0x0b, 0xdf, 0xc1, 0x4f, 0x80, 0x24, 0x83, 0x2b};
  return fe_from_bytes(b);
}();

const Fe kBaseX = [] {
  const std::uint8_t b[32] = {0x1a, 0xd5, 0x25, 0x8f, 0x60, 0x2d, 0x56, 0xc9,
                              0xb2, 0xa7, 0x25, 0x95, 0x60, 0xc7, 0x2c, 0x69,
                              0x5c, 0xdc, 0xd6, 0xfd, 0x31, 0xe2, 0xa4, 0xc0,
                              0xfe, 0x53, 0x6e, 0xcd, 0xd3, 0x36, 0x69, 0x21};
  return fe_from_bytes(b);
}();

const Fe kBaseY = [] {
  const std::uint8_t b[32] = {0x58, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66,
                              0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66,
                              0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66,
                              0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66, 0x66};
  return fe_from_bytes(b);
}();

namespace {

// Group order L (little-endian bytes).
constexpr std::uint8_t kL[32] = {0xed, 0xd3, 0xf5, 0x5c, 0x1a, 0x63, 0x12, 0x58,
                                 0xd6, 0x9c, 0xf7, 0xa2, 0xde, 0xf9, 0xde, 0x14,
                                 0,    0,    0,    0,    0,    0,    0,    0,
                                 0,    0,    0,    0,    0,    0,    0,    0x10};

inline void fe_sel(Fe& p, Fe& q, int b) noexcept {
  const std::uint64_t mask = ~(static_cast<std::uint64_t>(b) - 1);
  for (int i = 0; i < 5; ++i) {
    const std::uint64_t t = mask & (p.v[i] ^ q.v[i]);
    p.v[i] ^= t;
    q.v[i] ^= t;
  }
}

}  // namespace

void fe_carry(Fe& o) noexcept {
  std::uint64_t c;
  c = o.v[0] >> 51; o.v[0] &= kMask51; o.v[1] += c;
  c = o.v[1] >> 51; o.v[1] &= kMask51; o.v[2] += c;
  c = o.v[2] >> 51; o.v[2] &= kMask51; o.v[3] += c;
  c = o.v[3] >> 51; o.v[3] &= kMask51; o.v[4] += c;
  c = o.v[4] >> 51; o.v[4] &= kMask51; o.v[0] += 19 * c;
  c = o.v[0] >> 51; o.v[0] &= kMask51; o.v[1] += c;
}

void fe_cswap(Fe& a, Fe& b, int bit) noexcept { fe_sel(a, b, bit); }

void fe_add(Fe& o, const Fe& a, const Fe& b) noexcept {
  for (int i = 0; i < 5; ++i) o.v[i] = a.v[i] + b.v[i];
}

void fe_sub(Fe& o, const Fe& a, const Fe& b) noexcept {
  // a + 2p - b keeps limbs non-negative (inputs < 2^52 after carry).
  o.v[0] = a.v[0] + 0xfffffffffffdaULL - b.v[0];
  o.v[1] = a.v[1] + 0xffffffffffffeULL - b.v[1];
  o.v[2] = a.v[2] + 0xffffffffffffeULL - b.v[2];
  o.v[3] = a.v[3] + 0xffffffffffffeULL - b.v[3];
  o.v[4] = a.v[4] + 0xffffffffffffeULL - b.v[4];
}

void fe_mul(Fe& o, const Fe& a, const Fe& b) noexcept {
  const std::uint64_t a0 = a.v[0], a1 = a.v[1], a2 = a.v[2], a3 = a.v[3], a4 = a.v[4];
  const std::uint64_t b0 = b.v[0], b1 = b.v[1], b2 = b.v[2], b3 = b.v[3], b4 = b.v[4];
  const std::uint64_t b1_19 = b1 * 19, b2_19 = b2 * 19, b3_19 = b3 * 19, b4_19 = b4 * 19;

  u128 t0 = (u128)a0 * b0 + (u128)a1 * b4_19 + (u128)a2 * b3_19 + (u128)a3 * b2_19 + (u128)a4 * b1_19;
  u128 t1 = (u128)a0 * b1 + (u128)a1 * b0 + (u128)a2 * b4_19 + (u128)a3 * b3_19 + (u128)a4 * b2_19;
  u128 t2 = (u128)a0 * b2 + (u128)a1 * b1 + (u128)a2 * b0 + (u128)a3 * b4_19 + (u128)a4 * b3_19;
  u128 t3 = (u128)a0 * b3 + (u128)a1 * b2 + (u128)a2 * b1 + (u128)a3 * b0 + (u128)a4 * b4_19;
  u128 t4 = (u128)a0 * b4 + (u128)a1 * b3 + (u128)a2 * b2 + (u128)a3 * b1 + (u128)a4 * b0;

  std::uint64_t r0, r1, r2, r3, r4, carry;
  r0 = (std::uint64_t)t0 & kMask51; carry = (std::uint64_t)(t0 >> 51);
  t1 += carry;
  r1 = (std::uint64_t)t1 & kMask51; carry = (std::uint64_t)(t1 >> 51);
  t2 += carry;
  r2 = (std::uint64_t)t2 & kMask51; carry = (std::uint64_t)(t2 >> 51);
  t3 += carry;
  r3 = (std::uint64_t)t3 & kMask51; carry = (std::uint64_t)(t3 >> 51);
  t4 += carry;
  r4 = (std::uint64_t)t4 & kMask51; carry = (std::uint64_t)(t4 >> 51);
  r0 += carry * 19;
  carry = r0 >> 51; r0 &= kMask51;
  r1 += carry;

  o.v[0] = r0;
  o.v[1] = r1;
  o.v[2] = r2;
  o.v[3] = r3;
  o.v[4] = r4;
}

void fe_sq(Fe& o, const Fe& a) noexcept { fe_mul(o, a, a); }

void fe_inv(Fe& o, const Fe& a) noexcept {
  // a^(p-2) with the tweetnacl exponent schedule.
  Fe c = a;
  for (int i = 253; i >= 0; --i) {
    fe_sq(c, c);
    if (i != 2 && i != 4) fe_mul(c, c, a);
  }
  o = c;
}

void fe_pow2523(Fe& o, const Fe& a) noexcept {
  Fe c = a;
  for (int i = 250; i >= 0; --i) {
    fe_sq(c, c);
    if (i != 1) fe_mul(c, c, a);
  }
  o = c;
}

void fe_pack(ByteArray<32>& out, const Fe& a) noexcept {
  Fe t = a;
  fe_carry(t);
  fe_carry(t);

  // Canonicalize: conditionally subtract p (twice to be safe).
  for (int pass = 0; pass < 2; ++pass) {
    std::uint64_t m[5];
    std::uint64_t borrow = 0;
    const std::uint64_t p0 = kMask51 - 18;  // 2^51 - 19
    m[0] = t.v[0] - p0;
    borrow = (t.v[0] < p0) ? 1 : 0;
    for (int i = 1; i < 5; ++i) {
      const std::uint64_t sub = kMask51 + borrow;
      m[i] = t.v[i] - sub;
      borrow = (t.v[i] < sub) ? 1 : 0;
    }
    // borrow == 0 means t >= p: take m. Constant-time select.
    const std::uint64_t keep = 0 - borrow;  // all-ones if borrow (keep t)
    for (int i = 0; i < 5; ++i) {
      t.v[i] = (t.v[i] & keep) | ((m[i] & kMask51) & ~keep);
    }
  }

  // Pack 5x51 bits into 32 bytes.
  std::uint64_t w0 = t.v[0] | (t.v[1] << 51);
  std::uint64_t w1 = (t.v[1] >> 13) | (t.v[2] << 38);
  std::uint64_t w2 = (t.v[2] >> 26) | (t.v[3] << 25);
  std::uint64_t w3 = (t.v[3] >> 39) | (t.v[4] << 12);
  const std::uint64_t words[4] = {w0, w1, w2, w3};
  for (int w = 0; w < 4; ++w) {
    for (int i = 0; i < 8; ++i) {
      out[8 * w + i] = static_cast<std::uint8_t>(words[w] >> (8 * i));
    }
  }
}

void fe_unpack(Fe& out, const ByteArray<32>& in) noexcept {
  std::uint8_t b[32];
  std::memcpy(b, in.data(), 32);
  out = fe_from_bytes(b);
}

bool fe_equal(const Fe& a, const Fe& b) noexcept {
  ByteArray<32> pa, pb;
  fe_pack(pa, a);
  fe_pack(pb, b);
  return ct_equal(pa, pb);
}

int fe_parity(const Fe& a) noexcept {
  ByteArray<32> packed;
  fe_pack(packed, a);
  return packed[0] & 1;
}

GroupElement ge_identity() noexcept {
  GroupElement p;
  p.x = kZero;
  p.y = kOne;
  p.z = kOne;
  p.t = kZero;
  return p;
}

GroupElement ge_base() noexcept {
  GroupElement p;
  p.x = kBaseX;
  p.y = kBaseY;
  p.z = kOne;
  fe_mul(p.t, kBaseX, kBaseY);
  return p;
}

void ge_add(GroupElement& p, const GroupElement& q) noexcept {
  Fe a, b, c, d, t, e, f, g, h;
  fe_sub(a, p.y, p.x);
  fe_sub(t, q.y, q.x);
  fe_mul(a, a, t);
  fe_add(b, p.x, p.y);
  fe_add(t, q.x, q.y);
  fe_mul(b, b, t);
  fe_mul(c, p.t, q.t);
  fe_mul(c, c, kD2);
  fe_mul(d, p.z, q.z);
  fe_add(d, d, d);
  fe_sub(e, b, a);
  fe_sub(f, d, c);
  fe_add(g, d, c);
  fe_add(h, b, a);
  fe_mul(p.x, e, f);
  fe_mul(p.y, h, g);
  fe_mul(p.z, g, f);
  fe_mul(p.t, e, h);
}

namespace {

void ge_cswap(GroupElement& p, GroupElement& q, int bit) noexcept {
  fe_sel(p.x, q.x, bit);
  fe_sel(p.y, q.y, bit);
  fe_sel(p.z, q.z, bit);
  fe_sel(p.t, q.t, bit);
}

}  // namespace

void ge_scalarmult(GroupElement& r, const GroupElement& q_in, const ByteArray<32>& scalar) noexcept {
  GroupElement q = q_in;
  r = ge_identity();
  for (int i = 255; i >= 0; --i) {
    const int b = (scalar[i / 8] >> (i & 7)) & 1;
    ge_cswap(r, q, b);
    ge_add(q, r);
    ge_add(r, r);
    ge_cswap(r, q, b);
  }
}

void ge_scalarmult_base(GroupElement& r, const ByteArray<32>& scalar) noexcept {
  // Precomputed table: kBaseTable[i] = 2^i * B, built once. Base-point
  // multiplication (key generation, signing, Feldman commitments) then
  // costs at most 255 additions with no doublings.
  static const GroupElement* kBaseTable = [] {
    static GroupElement table[256];
    table[0] = ge_base();
    for (int i = 1; i < 256; ++i) {
      table[i] = table[i - 1];
      ge_add(table[i], table[i - 1]);
    }
    return table;
  }();

  r = ge_identity();
  for (int i = 0; i < 256; ++i) {
    if ((scalar[i / 8] >> (i & 7)) & 1) ge_add(r, kBaseTable[i]);
  }
}

ByteArray<32> ge_pack(const GroupElement& p) noexcept {
  Fe zi, tx, ty;
  fe_inv(zi, p.z);
  fe_mul(tx, p.x, zi);
  fe_mul(ty, p.y, zi);
  ByteArray<32> out;
  fe_pack(out, ty);
  out[31] = static_cast<std::uint8_t>(out[31] ^ (fe_parity(tx) << 7));
  return out;
}

bool ge_unpack(GroupElement& out, const ByteArray<32>& encoded, bool negate) noexcept {
  Fe t, chk, num, den, den2, den4, den6;
  out.z = kOne;
  fe_unpack(out.y, encoded);

  // Recover x from y: x^2 = (y^2 - 1) / (d y^2 + 1).
  fe_sq(num, out.y);
  fe_mul(den, num, kD);
  fe_sub(num, num, out.z);
  fe_add(den, out.z, den);

  fe_sq(den2, den);
  fe_sq(den4, den2);
  fe_mul(den6, den4, den2);
  fe_mul(t, den6, num);
  fe_mul(t, t, den);

  fe_pow2523(t, t);
  fe_mul(t, t, num);
  fe_mul(t, t, den);
  fe_mul(t, t, den);
  fe_mul(out.x, t, den);

  fe_sq(chk, out.x);
  fe_mul(chk, chk, den);
  if (!fe_equal(chk, num)) fe_mul(out.x, out.x, kSqrtM1);

  fe_sq(chk, out.x);
  fe_mul(chk, chk, den);
  if (!fe_equal(chk, num)) return false;

  const int want_negative = encoded[31] >> 7;
  int flip = (fe_parity(out.x) != want_negative) ? 1 : 0;
  if (negate) flip ^= 1;
  if (flip) fe_sub(out.x, kZero, out.x);

  fe_mul(out.t, out.x, out.y);
  return true;
}

bool ge_equal(const GroupElement& a, const GroupElement& b) noexcept {
  const ByteArray<32> pa = ge_pack(a);
  const ByteArray<32> pb = ge_pack(b);
  return ct_equal(pa, pb);
}

namespace {

/// Reduces the 64-limb byte-valued integer x mod L, writing 32 bytes into r.
void mod_l(std::uint8_t* r, std::int64_t x[64]) noexcept {
  std::int64_t carry;
  for (int i = 63; i >= 32; --i) {
    carry = 0;
    int j;
    for (j = i - 32; j < i - 12; ++j) {
      x[j] += carry - 16 * x[i] * kL[j - (i - 32)];
      carry = (x[j] + 128) >> 8;
      x[j] -= carry << 8;
    }
    x[j] += carry;
    x[i] = 0;
  }
  carry = 0;
  for (int j = 0; j < 32; ++j) {
    x[j] += carry - (x[31] >> 4) * kL[j];
    carry = x[j] >> 8;
    x[j] &= 255;
  }
  for (int j = 0; j < 32; ++j) x[j] -= carry * kL[j];
  for (int i = 0; i < 32; ++i) {
    x[i + 1] += x[i] >> 8;
    r[i] = static_cast<std::uint8_t>(x[i] & 255);
  }
}

}  // namespace

Scalar scalar_reduce64(const ByteArray<64>& wide) noexcept {
  std::int64_t x[64];
  for (int i = 0; i < 64; ++i) x[i] = wide[i];
  Scalar out;
  mod_l(out.data(), x);
  return out;
}

Scalar scalar_add(const Scalar& a, const Scalar& b) noexcept {
  std::int64_t x[64] = {};
  for (int i = 0; i < 32; ++i) x[i] = std::int64_t{a[i]} + std::int64_t{b[i]};
  Scalar out;
  mod_l(out.data(), x);
  return out;
}

Scalar scalar_mul(const Scalar& a, const Scalar& b) noexcept {
  return scalar_muladd(a, b, scalar_from_u64(0));
}

Scalar scalar_muladd(const Scalar& a, const Scalar& b, const Scalar& c) noexcept {
  std::int64_t x[64] = {};
  for (int i = 0; i < 32; ++i) x[i] = c[i];
  for (int i = 0; i < 32; ++i)
    for (int j = 0; j < 32; ++j) x[i + j] += std::int64_t{a[i]} * std::int64_t{b[j]};
  Scalar out;
  mod_l(out.data(), x);
  return out;
}

Scalar scalar_from_u64(std::uint64_t v) noexcept {
  Scalar out{};
  for (int i = 0; i < 8; ++i) out[i] = static_cast<std::uint8_t>(v >> (8 * i));
  return out;
}

}  // namespace dauth::crypto::curve25519
