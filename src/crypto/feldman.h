// Feldman verifiable secret sharing (Feldman, FOCS 1987).
//
// The paper (§3.5.2) uses plain Shamir sharing because every share travels
// inside a home-network-signed bundle, but explicitly notes that "the usage
// of a scheme such as Feldman's verifiable secret sharing provides validity
// guarantees for each share with a minimal cryptographic overhead". This
// module implements that extension over the Ed25519 group: shares are
// scalars mod the group order L, and the dealer publishes commitments
// C_j = a_j * B to the polynomial coefficients, letting anyone check
//   y_i * B == sum_j (x_i^j) * C_j
// without learning the secret.
//
// Secrets longer than 16 bytes are split into 16-byte chunks, each shared
// with an independent polynomial (chunk values < 2^128 < L always fit).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "common/secret.h"
#include "crypto/curve25519.h"
#include "crypto/shamir.h"  // RandomSource

namespace dauth::crypto {

/// A verifiable share of one participant: x-coordinate plus one scalar per
/// 16-byte secret chunk.
///
/// Chunk scalars are key material, so the share wipes them on destruction
/// and move-from. No operator== — shares are never compared, only verified
/// against commitments (feldman_verify).
struct FeldmanShare {
  std::uint8_t x = 0;
  std::vector<curve25519::Scalar> chunks;

  FeldmanShare() = default;
  FeldmanShare(const FeldmanShare&) = default;
  FeldmanShare& operator=(const FeldmanShare&) = default;
  FeldmanShare(FeldmanShare&& other) noexcept
      : x(other.x), chunks(std::move(other.chunks)) {
    other.wipe();
  }
  FeldmanShare& operator=(FeldmanShare&& other) noexcept {
    if (this != &other) {
      wipe();
      x = other.x;
      chunks = std::move(other.chunks);
      other.wipe();
    }
    return *this;
  }
  ~FeldmanShare() { wipe(); }

  void wipe() noexcept {
    for (auto& chunk : chunks) secure_wipe(chunk.data(), chunk.size());
    chunks.clear();
  }
};

/// Public commitment set: per chunk, `threshold` compressed group elements.
/// These are public by design (anyone may verify shares against them), so
/// plain member-wise equality is fine here.
struct FeldmanCommitments {
  std::size_t secret_length = 0;
  std::vector<std::vector<ByteArray<32>>> per_chunk;
};

struct FeldmanSharing {
  std::vector<FeldmanShare> shares;
  FeldmanCommitments commitments;
};

/// Splits `secret` into `share_count` verifiable shares with threshold
/// `threshold` (1 <= threshold <= share_count <= 255).
FeldmanSharing feldman_split(ByteView secret, std::size_t threshold, std::size_t share_count,
                             RandomSource& random);

/// Checks a single share against the dealer's commitments.
bool feldman_verify(const FeldmanShare& share, const FeldmanCommitments& commitments);

/// Reconstructs the secret from >= threshold verified shares.
/// Throws on malformed input (duplicate x, inconsistent chunk counts).
SecretBytes feldman_combine(const std::vector<FeldmanShare>& shares, std::size_t secret_length);

/// Scalar inverse mod L via Fermat (exposed for tests).
curve25519::Scalar scalar_invert(const curve25519::Scalar& a);

}  // namespace dauth::crypto
