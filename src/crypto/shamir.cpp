#include "crypto/shamir.h"

#include <stdexcept>

#include "crypto/gf256.h"

namespace dauth::crypto {

std::vector<ShamirShare> shamir_split(ByteView secret, std::size_t threshold,
                                      std::size_t share_count, RandomSource& random) {
  if (threshold == 0) throw std::invalid_argument("shamir_split: threshold must be >= 1");
  if (threshold > share_count)
    throw std::invalid_argument("shamir_split: threshold exceeds share count");
  if (share_count > 255) throw std::invalid_argument("shamir_split: at most 255 shares");

  // coefficients[d] holds the degree-(d+1) coefficient for every secret byte;
  // the constant term (degree 0) is the secret itself. Coefficients are as
  // sensitive as the secret (threshold-1 of them plus one share leak it), so
  // they live in self-wiping buffers.
  std::vector<SecretBytes> coefficients(threshold - 1);
  for (auto& coeff_row : coefficients) {
    coeff_row.resize(secret.size());
    random.fill(coeff_row.mutable_view());
  }

  std::vector<ShamirShare> shares(share_count);
  for (std::size_t s = 0; s < share_count; ++s) {
    const auto x = static_cast<std::uint8_t>(s + 1);
    shares[s].x = x;
    shares[s].y.resize(secret.size());
    for (std::size_t i = 0; i < secret.size(); ++i) {
      // Horner evaluation: ((c_{k-1} x + c_{k-2}) x + ...) x + secret.
      std::uint8_t acc = 0;
      for (std::size_t d = coefficients.size(); d-- > 0;) {
        acc = gf256::add(gf256::mul(acc, x), coefficients[d][i]);
      }
      acc = gf256::add(gf256::mul(acc, x), secret[i]);
      shares[s].y[i] = acc;
    }
  }
  return shares;
}

SecretBytes shamir_combine(const std::vector<ShamirShare>& shares) {
  if (shares.empty()) throw std::invalid_argument("shamir_combine: no shares");
  const std::size_t length = shares.front().y.size();
  for (const auto& share : shares) {
    if (share.x == 0) throw std::invalid_argument("shamir_combine: x must be non-zero");
    if (share.y.size() != length)
      throw std::invalid_argument("shamir_combine: inconsistent share lengths");
  }
  for (std::size_t i = 0; i < shares.size(); ++i)
    for (std::size_t j = i + 1; j < shares.size(); ++j)
      if (shares[i].x == shares[j].x)
        throw std::invalid_argument("shamir_combine: duplicate x-coordinate");

  // Lagrange basis at x = 0: L_i(0) = prod_{j != i} x_j / (x_j - x_i).
  // In GF(2^8) subtraction is XOR.
  std::vector<std::uint8_t> basis(shares.size());
  for (std::size_t i = 0; i < shares.size(); ++i) {
    std::uint8_t numerator = 1;
    std::uint8_t denominator = 1;
    for (std::size_t j = 0; j < shares.size(); ++j) {
      if (j == i) continue;
      numerator = gf256::mul(numerator, shares[j].x);
      denominator = gf256::mul(denominator,
                               gf256::add(shares[j].x, shares[i].x));
    }
    basis[i] = gf256::div(numerator, denominator);
  }

  SecretBytes secret(length);
  for (std::size_t i = 0; i < shares.size(); ++i) {
    for (std::size_t b = 0; b < length; ++b) {
      secret[b] = gf256::add(secret[b], gf256::mul(basis[i], shares[i].y[b]));
    }
  }
  return secret;
}

}  // namespace dauth::crypto
