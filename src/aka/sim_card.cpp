#include "aka/sim_card.h"

namespace dauth::aka {

namespace {

/// Shared 4G/5G challenge validation: recovers the SQN, checks MAC-A, and
/// enforces the slice window. On success `mil`/`sqn_xor_ak`/`sqn` are set.
struct ChallengeCheck {
  bool mac_ok = false;
  bool sqn_ok = false;
  crypto::MilenageOutput mil{};
  ByteArray<6> sqn_bytes{};
  ByteArray<6> sqn_xor_ak{};
  std::uint64_t sqn = 0;
};

ChallengeCheck check_challenge(const aka::SubscriberKeys& keys, const SqnTracker& tracker,
                               const crypto::Rand& rand, const Autn& autn) {
  const AutnParts parts = split_autn(autn);
  const crypto::MilenageOutput ak_pass =
      crypto::milenage(keys.k, keys.opc, rand, ByteArray<6>{}, parts.amf);
  ChallengeCheck check;
  check.sqn_xor_ak = parts.sqn_xor_ak;
  check.sqn_bytes = xor_arrays(parts.sqn_xor_ak, ak_pass.ak);
  check.sqn = sqn_from_bytes(check.sqn_bytes);
  check.mil = crypto::milenage(keys.k, keys.opc, rand, check.sqn_bytes, parts.amf);
  check.mac_ok = ct_equal(check.mil.mac_a, parts.mac_a);
  check.sqn_ok = tracker.would_accept(check.sqn);
  return check;
}

Auts build_auts(const aka::SubscriberKeys& keys, const SqnTracker& tracker,
                const crypto::Rand& rand) {
  const std::uint64_t sqn_ms = tracker.highest_overall();
  const ByteArray<6> sqn_ms_bytes = sqn_to_bytes(sqn_ms);
  const crypto::Amf resync_amf{0x00, 0x00};
  const crypto::MilenageOutput resync =
      crypto::milenage(keys.k, keys.opc, rand, sqn_ms_bytes, resync_amf);
  Auts auts;
  auts.sqn_ms_xor_ak_star = xor_arrays(sqn_ms_bytes, resync.ak_star);
  auts.mac_s = resync.mac_s;
  return auts;
}

}  // namespace

UsimResult4G Usim::authenticate_4g(const crypto::Rand& rand, const Autn& autn,
                                   const ByteArray<3>& plmn) {
  const ChallengeCheck check = check_challenge(keys_, sqn_, rand, autn);

  UsimResult4G result;
  if (!check.mac_ok) {
    result.failure = UsimFailure::kMacMismatch;
    return result;
  }
  if (!check.sqn_ok) {
    result.failure = UsimFailure::kSqnOutOfRange;
    result.auts = build_auts(keys_, sqn_, rand);
    return result;
  }
  sqn_.accept(check.sqn);

  UsimResponse4G response;
  response.sqn = check.sqn;
  response.res = check.mil.res;
  response.k_asme = crypto::derive_k_asme(check.mil.ck, check.mil.ik, plmn, check.sqn_xor_ak);
  result.response = response;
  return result;
}

UsimResult Usim::authenticate(const crypto::Rand& rand, const Autn& autn,
                              const std::string& serving_network_name) {
  const AutnParts parts = split_autn(autn);

  // Recover SQN: AK = f5(K, RAND), SQN = (SQN^AK) ^ AK.
  // Milenage computes everything in one pass; MAC verification needs the SQN,
  // so compute AK first via a throwaway run (f5 ignores SQN/AMF).
  const crypto::MilenageOutput ak_pass =
      crypto::milenage(keys_.k, keys_.opc, rand, ByteArray<6>{}, parts.amf);
  const ByteArray<6> sqn_bytes = xor_arrays(parts.sqn_xor_ak, ak_pass.ak);
  const std::uint64_t sqn = sqn_from_bytes(sqn_bytes);

  // Full pass with the recovered SQN to check MAC-A.
  const crypto::MilenageOutput mil =
      crypto::milenage(keys_.k, keys_.opc, rand, sqn_bytes, parts.amf);

  UsimResult result;
  if (!ct_equal(mil.mac_a, parts.mac_a)) {
    result.failure = UsimFailure::kMacMismatch;
    return result;
  }

  if (!sqn_.would_accept(sqn)) {
    result.failure = UsimFailure::kSqnOutOfRange;
    // Build AUTS from SQNms (highest accepted SQN) with the resync AMF of
    // all-zeros per TS 33.102 §6.3.3.
    const std::uint64_t sqn_ms = sqn_.highest_overall();
    const ByteArray<6> sqn_ms_bytes = sqn_to_bytes(sqn_ms);
    const crypto::Amf resync_amf{0x00, 0x00};
    const crypto::MilenageOutput resync =
        crypto::milenage(keys_.k, keys_.opc, rand, sqn_ms_bytes, resync_amf);
    Auts auts;
    auts.sqn_ms_xor_ak_star = xor_arrays(sqn_ms_bytes, resync.ak_star);
    auts.mac_s = resync.mac_s;
    result.auts = auts;
    return result;
  }

  sqn_.accept(sqn);

  UsimResponse response;
  response.sqn = sqn;
  response.res_star =
      crypto::derive_res_star(mil.ck, mil.ik, serving_network_name, rand, mil.res);
  const crypto::Key256 k_ausf =
      crypto::derive_k_ausf(mil.ck, mil.ik, serving_network_name, parts.sqn_xor_ak);
  response.k_seaf = crypto::derive_k_seaf(k_ausf, serving_network_name);
  result.response = response;
  return result;
}

}  // namespace dauth::aka
