// Sequence-number management per TS 33.102 Annex C (informative scheme).
//
// AKA sequence numbers are 48-bit values. A SIM partitions the SQN space
// into `kSliceCount` interleaved slices by value mod 32 (Appendix B of the
// paper, Tables 2/3): slice i contains i, i+32, i+64, ... The SIM tracks the
// highest SQN *per slice* and accepts any SQN that exceeds the high-water
// mark of its own slice — even if numerically smaller than an SQN already
// seen in another slice.
//
// dAuth leans on exactly this property (§3.5.1): the home network dedicates
// one slice to each backup network (slice 0 is reserved for the home
// network itself), so vectors disseminated to different backups can be
// consumed in any order, and a revocation simply supersedes a slice by
// issuing a higher SQN inside it.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace dauth::aka {

inline constexpr int kSliceCount = 32;        // common SIM configuration
inline constexpr int kHomeSlice = 0;          // reserved for the home network
inline constexpr std::uint64_t kSqnMask = (std::uint64_t{1} << 48) - 1;

/// Slice index of a sequence number.
constexpr int sqn_slice(std::uint64_t sqn) noexcept {
  return static_cast<int>(sqn % kSliceCount);
}

/// 6-byte big-endian encoding used inside AUTN.
ByteArray<6> sqn_to_bytes(std::uint64_t sqn) noexcept;
std::uint64_t sqn_from_bytes(const ByteArray<6>& bytes) noexcept;

/// SIM-side tracker: the per-slice high-water marks of Annex C.
class SqnTracker {
 public:
  SqnTracker() { highest_.fill(0); }

  /// Whether `sqn` would be accepted (strictly above its slice's mark;
  /// SQN 0 is never accepted — provisioning starts counters above 0).
  bool would_accept(std::uint64_t sqn) const noexcept;

  /// Accepts and records `sqn`; returns false (no state change) if invalid.
  bool accept(std::uint64_t sqn) noexcept;

  std::uint64_t highest(int slice) const { return highest_.at(slice); }

  /// Greatest SQN accepted in any slice (SQNms for resynchronisation).
  std::uint64_t highest_overall() const noexcept;

 private:
  std::array<std::uint64_t, kSliceCount> highest_;
};

/// Home-network-side allocator: hands out fresh SQNs slice by slice.
class SqnAllocator {
 public:
  SqnAllocator();

  /// Next unused SQN in `slice` (strictly increasing within the slice).
  std::uint64_t allocate(int slice);

  /// Greatest SQN ever allocated in `slice` (0 if none).
  std::uint64_t last_allocated(int slice) const;

  /// Ensures future allocations in `slice` exceed `sqn` — the revocation
  /// primitive (§4.3): allocating past everything a revoked backup holds
  /// makes the backup's cached vectors permanently unacceptable to the SIM.
  void advance_past(int slice, std::uint64_t sqn);

  /// Re-synchronises all slices after an AUTS (UE reports SQNms): every
  /// slice counter is raised above SQNms so new vectors are accepted.
  void resynchronize(std::uint64_t sqn_ms);

 private:
  std::array<std::uint64_t, kSliceCount> next_in_slice_;  // next value to hand out
};

}  // namespace dauth::aka
