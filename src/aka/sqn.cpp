#include "aka/sqn.h"

#include <algorithm>
#include <stdexcept>

namespace dauth::aka {

ByteArray<6> sqn_to_bytes(std::uint64_t sqn) noexcept {
  ByteArray<6> out;
  for (int i = 0; i < 6; ++i)
    out[i] = static_cast<std::uint8_t>(sqn >> (40 - 8 * i));
  return out;
}

std::uint64_t sqn_from_bytes(const ByteArray<6>& bytes) noexcept {
  std::uint64_t sqn = 0;
  for (int i = 0; i < 6; ++i) sqn = (sqn << 8) | bytes[i];
  return sqn;
}

bool SqnTracker::would_accept(std::uint64_t sqn) const noexcept {
  if (sqn == 0 || sqn > kSqnMask) return false;
  return sqn > highest_[sqn_slice(sqn)];
}

bool SqnTracker::accept(std::uint64_t sqn) noexcept {
  if (!would_accept(sqn)) return false;
  highest_[sqn_slice(sqn)] = sqn;
  return true;
}

std::uint64_t SqnTracker::highest_overall() const noexcept {
  return *std::max_element(highest_.begin(), highest_.end());
}

SqnAllocator::SqnAllocator() {
  // Slice i starts at value i + kSliceCount (skipping value 0 for slice 0
  // and leaving a provisioning gap below).
  for (int i = 0; i < kSliceCount; ++i)
    next_in_slice_[i] = static_cast<std::uint64_t>(i) + kSliceCount;
}

std::uint64_t SqnAllocator::allocate(int slice) {
  if (slice < 0 || slice >= kSliceCount) throw std::out_of_range("SqnAllocator: bad slice");
  const std::uint64_t sqn = next_in_slice_[slice];
  if (sqn > kSqnMask) throw std::overflow_error("SqnAllocator: slice exhausted");
  next_in_slice_[slice] = sqn + kSliceCount;
  return sqn;
}

std::uint64_t SqnAllocator::last_allocated(int slice) const {
  if (slice < 0 || slice >= kSliceCount) throw std::out_of_range("SqnAllocator: bad slice");
  const std::uint64_t next = next_in_slice_[slice];
  return next < 2 * kSliceCount ? 0 : next - kSliceCount;
}

void SqnAllocator::advance_past(int slice, std::uint64_t sqn) {
  if (slice < 0 || slice >= kSliceCount) throw std::out_of_range("SqnAllocator: bad slice");
  // Smallest member of `slice` strictly greater than sqn.
  std::uint64_t candidate =
      (sqn / kSliceCount) * kSliceCount + static_cast<std::uint64_t>(slice);
  while (candidate <= sqn) candidate += kSliceCount;
  next_in_slice_[slice] = std::max(next_in_slice_[slice], candidate);
}

void SqnAllocator::resynchronize(std::uint64_t sqn_ms) {
  for (int slice = 0; slice < kSliceCount; ++slice) advance_past(slice, sqn_ms);
}

}  // namespace dauth::aka
