// Authentication-vector generation (home-network / AuC side).
//
// A 5G authentication vector binds one RAND challenge to one SQN:
//   AUTN  = (SQN ^ AK) || AMF || MAC-A
//   XRES* = KDF(CK||IK, SNN, RAND, XRES)
//   K_seaf (via K_ausf) — the session secret dAuth splits into key shares.
// dAuth pre-generates these for backup networks (§4.2.1); in traditional
// mode the home network generates one on demand (§4.1).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/bytes.h"
#include "crypto/kdf_3gpp.h"
#include "crypto/milenage.h"

namespace dauth::aka {

/// Subscriber credentials as provisioned in the home network's database and
/// mirrored on the SIM card.
struct SubscriberKeys {
  crypto::MilenageKey k;
  crypto::MilenageOpc opc;
};

/// AUTN = (SQN^AK)[6] || AMF[2] || MAC-A[8].
using Autn = ByteArray<16>;

/// One complete 5G authentication vector (home-network view).
struct AuthVector {
  crypto::Rand rand;
  Autn autn;
  std::uint64_t sqn = 0;               // for bookkeeping; masked inside AUTN
  crypto::ResStar xres_star;           // expected UE response
  ByteArray<16> hxres_star;            // H(XRES*): safe to give serving networks
  crypto::Key256 k_seaf;               // the session secret (never leaves home intact)
};

/// Default AMF with the "separation bit" (bit 0 of the field) set, as 5G
/// requires (TS 33.102 §6.3.1 / TS 33.501).
inline constexpr crypto::Amf kDefaultAmf = {0x80, 0x00};

/// Generates a vector for the given subscriber/SQN/RAND against a serving
/// network name (5G AKA derivations bind to the serving network).
AuthVector generate_auth_vector(const SubscriberKeys& keys, std::uint64_t sqn,
                                const crypto::Rand& rand,
                                const std::string& serving_network_name,
                                const crypto::Amf& amf = kDefaultAmf);

// ---- 4G / EPS AKA (TS 33.401) ----------------------------------------------
//
// dAuth serves unmodified 4G devices through the MME (paper §5.2): the
// challenge transport is identical, but the UE answers with the raw
// Milenage RES and the session secret is K_ASME, bound to the serving PLMN
// instead of the 5G serving-network name.

/// One complete EPS authentication vector.
struct AuthVector4G {
  crypto::Rand rand;
  Autn autn;
  std::uint64_t sqn = 0;
  crypto::Res xres;            // 8-byte expected response (no RES* derivation)
  ByteArray<16> hxres;         // H(XRES): dAuth's share index for 4G vectors
  crypto::Key256 k_asme;       // the session secret (fills K_seaf's role)
};

/// TS 24.301-style 3-byte BCD PLMN identity from MCC/MNC digits.
ByteArray<3> encode_plmn(std::string_view mcc, std::string_view mnc);

/// Generates an EPS vector for the given subscriber/SQN/RAND and PLMN.
AuthVector4G generate_auth_vector_4g(const SubscriberKeys& keys, std::uint64_t sqn,
                                     const crypto::Rand& rand, const ByteArray<3>& plmn,
                                     const crypto::Amf& amf = kDefaultAmf);

/// Splits an AUTN into its fields.
struct AutnParts {
  ByteArray<6> sqn_xor_ak;
  crypto::Amf amf;
  crypto::MacA mac_a;
};
AutnParts split_autn(const Autn& autn) noexcept;
Autn make_autn(const ByteArray<6>& sqn_xor_ak, const crypto::Amf& amf,
               const crypto::MacA& mac_a) noexcept;

}  // namespace dauth::aka
