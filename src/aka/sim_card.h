// USIM simulation (UE side of 4G/5G AKA).
//
// Verifies network challenges exactly as an off-the-shelf SIM conforming to
// TS 33.102 Annex C would: recompute MAC-A under the shared key, unmask the
// SQN, check it against the per-slice high-water marks, and — on stale SQN —
// produce the AUTS resynchronisation token. On success it derives the UE
// side of the 5G key hierarchy so tests can assert that UE and network end
// up with the same K_seaf.
#pragma once

#include <optional>
#include <string>
#include <variant>

#include "aka/auth_vector.h"
#include "aka/sqn.h"
#include "common/ids.h"

namespace dauth::aka {

/// UE's response to a successful challenge.
struct UsimResponse {
  crypto::ResStar res_star;  // sent back to the serving network
  crypto::Key256 k_seaf;     // derived locally; must match the network's
  std::uint64_t sqn = 0;     // the accepted sequence number (diagnostics)
};

/// UE's response to a successful 4G/EPS challenge.
struct UsimResponse4G {
  crypto::Res res;        // the raw Milenage response
  crypto::Key256 k_asme;  // derived locally; must match the network's
  std::uint64_t sqn = 0;
};

enum class UsimFailure {
  kMacMismatch,   // challenge not produced by the home network -> abort
  kSqnOutOfRange, // replayed/stale vector -> resynchronise
};

/// AUTS = (SQNms ^ AK*) || MAC-S, the resync token (TS 33.102 §6.3.3).
struct Auts {
  ByteArray<6> sqn_ms_xor_ak_star;
  crypto::MacS mac_s;
};

struct UsimResult {
  std::optional<UsimResponse> response;     // set on success
  std::optional<UsimFailure> failure;       // set on failure
  std::optional<Auts> auts;                 // set when failure == kSqnOutOfRange

  bool ok() const noexcept { return response.has_value(); }
};

struct UsimResult4G {
  std::optional<UsimResponse4G> response;
  std::optional<UsimFailure> failure;
  std::optional<Auts> auts;

  bool ok() const noexcept { return response.has_value(); }
};

class Usim {
 public:
  Usim(Supi supi, SubscriberKeys keys) : supi_(std::move(supi)), keys_(keys) {}

  const Supi& supi() const noexcept { return supi_; }
  const SubscriberKeys& keys() const noexcept { return keys_; }

  /// Processes a 5G AuthRequest {RAND, AUTN} bound to
  /// `serving_network_name`. Mutates SQN state on success.
  UsimResult authenticate(const crypto::Rand& rand, const Autn& autn,
                          const std::string& serving_network_name);

  /// Processes a 4G/EPS AuthRequest {RAND, AUTN} bound to the serving PLMN.
  /// Same SIM, same SQN state — a dual-mode device shares the counter.
  UsimResult4G authenticate_4g(const crypto::Rand& rand, const Autn& autn,
                               const ByteArray<3>& plmn);

  /// Read-only SQN state (for tests and revocation checks).
  const SqnTracker& sqn_tracker() const noexcept { return sqn_; }

 private:
  Supi supi_;
  SubscriberKeys keys_;
  SqnTracker sqn_;
};

}  // namespace dauth::aka
