// SUCI: Subscription Concealed Identifier (TS 33.501 §6.12, Annex C).
//
// 5G UEs never send their permanent identifier (SUPI) in the clear; they
// encrypt the subscriber part (MSIN) to the home network's public key with
// an ECIES scheme. We implement a Profile-A-shaped construction:
//   ephemeral X25519 key pair -> shared secret -> HKDF -> AES-128-CTR key +
//   HMAC-SHA-256 MAC key; ciphertext = CTR(MSIN), tag = HMAC(ct)[0..7].
//
// In dAuth (§4.2.1) the home network hands the SUCI decryption key to its
// backup networks so they can de-conceal user IDs during an outage.
#pragma once

#include <optional>
#include <string>

#include "common/bytes.h"
#include "common/ids.h"
#include "crypto/drbg.h"
#include "crypto/x25519.h"

namespace dauth::aka {

/// A concealed identifier as sent over the air.
///
/// No operator==: although every field is ciphertext or routing info, SUCIs
/// are linkability-sensitive and nothing in the protocol compares them —
/// equality would only ever be a bug (e.g. replay "detection" that defeats
/// the unlinkability the scheme buys). Compare fields explicitly if needed.
struct Suci {
  std::string mcc;                        // routing info stays cleartext
  std::string mnc;
  crypto::X25519Point ephemeral_public;   // UE's ephemeral key
  Bytes ciphertext;                       // encrypted MSIN digits
  ByteArray<8> mac;                       // truncated HMAC tag
};

/// Conceals `supi` to the home network's public key.
Suci conceal_supi(const Supi& supi, const crypto::X25519Point& home_public_key,
                  crypto::RandomSource& random);

/// De-conceals a SUCI with the home network's private key. Returns the SUPI,
/// or nullopt if the MAC check fails (tampered or wrong-key ciphertext).
std::optional<Supi> deconceal_suci(const Suci& suci,
                                   const crypto::X25519Scalar& home_secret_key);

}  // namespace dauth::aka
