#include "aka/suci.h"

#include <cstring>

#include "common/secret.h"
#include "crypto/aes128.h"
#include "crypto/hmac.h"

namespace dauth::aka {
namespace {

struct DerivedKeys {
  Secret<16> enc_key;
  Secret<32> mac_key;
};

DerivedKeys derive_keys(const crypto::X25519Point& shared,
                        const crypto::X25519Point& ephemeral_public) {
  // HKDF with the ephemeral public key bound into the info string.
  const SecretBytes okm(crypto::hkdf(
      /*salt=*/{}, /*ikm=*/shared,
      /*info=*/concat(as_bytes("suci-profile-a"), ephemeral_public),
      /*length=*/48));
  DerivedKeys keys;
  std::memcpy(keys.enc_key.data(), okm.data(), 16);
  std::memcpy(keys.mac_key.data(), okm.data() + 16, 32);
  return keys;
}

ByteArray<8> compute_tag(const Secret<32>& mac_key, ByteView ciphertext) {
  const auto full = crypto::hmac_sha256(mac_key, ciphertext);
  return take<8>(full);
}

}  // namespace

Suci conceal_supi(const Supi& supi, const crypto::X25519Point& home_public_key,
                  crypto::RandomSource& random) {
  const crypto::X25519KeyPair ephemeral = crypto::x25519_generate(random);
  crypto::X25519Point shared = crypto::x25519(ephemeral.secret, home_public_key);
  const DerivedKeys keys = derive_keys(shared, ephemeral.public_key);
  secure_wipe(MutableByteView(shared));  // the ECDH output is keying material

  Suci suci;
  suci.mcc = std::string(supi.mcc());
  suci.mnc = std::string(supi.mnc());
  suci.ephemeral_public = ephemeral.public_key;

  suci.ciphertext = to_bytes(as_bytes(supi.msin()));
  const crypto::Aes128 cipher(keys.enc_key);
  crypto::aes128_ctr_xor(cipher, crypto::AesBlock{}, suci.ciphertext);

  suci.mac = compute_tag(keys.mac_key, suci.ciphertext);
  return suci;
}

std::optional<Supi> deconceal_suci(const Suci& suci,
                                   const crypto::X25519Scalar& home_secret_key) {
  crypto::X25519Point shared = crypto::x25519(home_secret_key, suci.ephemeral_public);
  const DerivedKeys keys = derive_keys(shared, suci.ephemeral_public);
  secure_wipe(MutableByteView(shared));

  if (!ct_equal(compute_tag(keys.mac_key, suci.ciphertext), suci.mac)) return std::nullopt;

  Bytes plaintext = suci.ciphertext;
  const crypto::Aes128 cipher(keys.enc_key);
  crypto::aes128_ctr_xor(cipher, crypto::AesBlock{}, plaintext);

  std::string digits = suci.mcc + suci.mnc;
  digits.append(plaintext.begin(), plaintext.end());
  return Supi(std::move(digits));
}

}  // namespace dauth::aka
