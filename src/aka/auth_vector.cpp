#include "aka/auth_vector.h"

#include <cstring>
#include <stdexcept>

#include "aka/sqn.h"
#include "crypto/sha256.h"

namespace dauth::aka {

AuthVector generate_auth_vector(const SubscriberKeys& keys, std::uint64_t sqn,
                                const crypto::Rand& rand,
                                const std::string& serving_network_name,
                                const crypto::Amf& amf) {
  const ByteArray<6> sqn_bytes = sqn_to_bytes(sqn);
  const crypto::MilenageOutput mil = crypto::milenage(keys.k, keys.opc, rand, sqn_bytes, amf);

  AuthVector v;
  v.rand = rand;
  v.sqn = sqn;

  const ByteArray<6> sqn_xor_ak = xor_arrays(sqn_bytes, mil.ak);
  v.autn = make_autn(sqn_xor_ak, amf, mil.mac_a);

  v.xres_star =
      crypto::derive_res_star(mil.ck, mil.ik, serving_network_name, rand, mil.res);
  v.hxres_star = crypto::derive_hres_star(rand, v.xres_star);

  const crypto::Key256 k_ausf =
      crypto::derive_k_ausf(mil.ck, mil.ik, serving_network_name, sqn_xor_ak);
  v.k_seaf = crypto::derive_k_seaf(k_ausf, serving_network_name);
  return v;
}

ByteArray<3> encode_plmn(std::string_view mcc, std::string_view mnc) {
  if (mcc.size() != 3 || (mnc.size() != 2 && mnc.size() != 3)) {
    throw std::invalid_argument("encode_plmn: bad mcc/mnc length");
  }
  auto digit = [](char c) -> std::uint8_t {
    if (c < '0' || c > '9') throw std::invalid_argument("encode_plmn: non-digit");
    return static_cast<std::uint8_t>(c - '0');
  };
  ByteArray<3> plmn;
  plmn[0] = static_cast<std::uint8_t>((digit(mcc[1]) << 4) | digit(mcc[0]));
  const std::uint8_t mnc3 = mnc.size() == 3 ? digit(mnc[2]) : 0x0f;  // filler
  plmn[1] = static_cast<std::uint8_t>((mnc3 << 4) | digit(mcc[2]));
  plmn[2] = static_cast<std::uint8_t>((digit(mnc[1]) << 4) | digit(mnc[0]));
  return plmn;
}

AuthVector4G generate_auth_vector_4g(const SubscriberKeys& keys, std::uint64_t sqn,
                                     const crypto::Rand& rand, const ByteArray<3>& plmn,
                                     const crypto::Amf& amf) {
  const ByteArray<6> sqn_bytes = sqn_to_bytes(sqn);
  const crypto::MilenageOutput mil = crypto::milenage(keys.k, keys.opc, rand, sqn_bytes, amf);

  AuthVector4G v;
  v.rand = rand;
  v.sqn = sqn;
  const ByteArray<6> sqn_xor_ak = xor_arrays(sqn_bytes, mil.ak);
  v.autn = make_autn(sqn_xor_ak, amf, mil.mac_a);
  v.xres = mil.res;
  v.hxres = take<16>(crypto::sha256(mil.res));
  v.k_asme = crypto::derive_k_asme(mil.ck, mil.ik, plmn, sqn_xor_ak);
  return v;
}

AutnParts split_autn(const Autn& autn) noexcept {
  AutnParts parts;
  std::memcpy(parts.sqn_xor_ak.data(), autn.data(), 6);
  std::memcpy(parts.amf.data(), autn.data() + 6, 2);
  std::memcpy(parts.mac_a.data(), autn.data() + 8, 8);
  return parts;
}

Autn make_autn(const ByteArray<6>& sqn_xor_ak, const crypto::Amf& amf,
               const crypto::MacA& mac_a) noexcept {
  Autn autn;
  std::memcpy(autn.data(), sqn_xor_ak.data(), 6);
  std::memcpy(autn.data() + 6, amf.data(), 2);
  std::memcpy(autn.data() + 8, mac_a.data(), 8);
  return autn;
}

}  // namespace dauth::aka
