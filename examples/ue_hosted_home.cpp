// §7.2 extension: eliminating the home network.
//
// "the secret key would only exist on the user's device and would be used
//  to generate auth tuples and key shares then proactively distributed
//  across the backup networks. After the UE is initially bootstrapped ...
//  the UE itself has all of the data necessary to act as a home network
//  with only one user."
//
// This example demonstrates exactly that: a *virtual pseudonetwork* hosted
// on the UE's own node generates and disseminates the authentication
// material, publishes its directory entries, and then disappears forever.
// The user keeps authenticating at serving networks purely through the
// backups — no infrastructure home network ever existed.
//
// Build & run:  ./build/examples/ue_hosted_home
#include <cstdio>

#include "core/dauth_node.h"
#include "ran/gnb.h"

using namespace dauth;

int main() {
  sim::Simulator simulator(72);
  sim::Network network(simulator);
  sim::Rpc rpc(network);

  auto cfg = [](const char* name) {
    sim::NodeConfig c;
    c.name = name;
    c.access.base = ms(4);
    c.access.jitter_sigma = 0.2;
    return c;
  };
  const auto dir_node = network.add_node(cfg("directory"));
  const auto phone_node = network.add_node(cfg("phone"));  // the UE's own device
  const auto b1_node = network.add_node(cfg("backup-1"));
  const auto b2_node = network.add_node(cfg("backup-2"));
  const auto b3_node = network.add_node(cfg("backup-3"));
  const auto serving_node = network.add_node(cfg("serving"));

  directory::DirectoryServer directory_server;
  directory_server.bind(rpc, dir_node);

  core::FederationConfig config;
  config.threshold = 2;
  // §7.2: the device pre-generates the "maximum permissible number" of
  // vectors before destroying/forgetting the key material server-side.
  config.vectors_per_backup = 16;
  config.report_interval = 0;

  core::DauthNode b1(rpc, b1_node, NetworkId("backup-1"), dir_node, directory_server, config, 1);
  core::DauthNode b2(rpc, b2_node, NetworkId("backup-2"), dir_node, directory_server, config, 2);
  core::DauthNode b3(rpc, b3_node, NetworkId("backup-3"), dir_node, directory_server, config, 3);
  core::DauthNode serving(rpc, serving_node, NetworkId("serving-net"), dir_node,
                          directory_server, config, 4);

  // The virtual pseudonetwork lives ON the phone: one subscriber, itself.
  const Supi me("315010000009999");
  core::DauthNode pseudo(rpc, phone_node, NetworkId("ue-net-9999"), dir_node,
                         directory_server, config, 5);
  pseudo.set_backups({b1.id(), b2.id(), b3.id()});
  const auto sim_keys = pseudo.provision_subscriber(me);

  std::printf("bootstrap: phone-hosted pseudonetwork disseminating material...\n");
  pseudo.home().disseminate(me, [](std::size_t ok) {
    std::printf("bootstrap: %zu backup networks primed\n", ok);
  });
  simulator.run();

  // The pseudonetwork now vanishes: the phone keeps only its SIM. There is
  // no home network to be online, ever.
  network.node(phone_node).set_online(false);
  serving.serving().set_home_health(pseudo.id(), false);
  std::printf("bootstrap complete: pseudonetwork retired — the secret key now\n"
              "exists only inside the phone's SIM\n\n");

  ran::Ue phone(rpc, phone_node, serving_node, me, sim_keys,
                ran::emulated_ran_profile(config.serving_network_name));
  // The phone's node is "offline" as a server, but the UE radio still works;
  // model the radio by bringing the node back online as a client only —
  // simplest: a separate RAN node stands in for the radio side.
  const auto ran_node = network.add_node(cfg("ran"));
  ran::Ue phone_radio(rpc, ran_node, serving_node, me, sim_keys,
                      ran::emulated_ran_profile(config.serving_network_name));

  for (int day = 1; day <= 3; ++day) {
    bool ok = false;
    std::string path;
    phone_radio.attach([&](const ran::AttachRecord& r) {
      ok = r.success && r.key_confirmed;
      path = r.path;
    });
    simulator.run_until(simulator.now() + sec(30));
    std::printf("day %d attach: %s via '%s' (no home network exists)\n", day,
                ok ? "SUCCESS" : "FAILED", path.c_str());
    simulator.run_until(simulator.now() + hours(24));
  }

  std::printf("\nremaining pre-generated material per backup: %zu / %zu / %zu vectors\n",
              b1.backup().stored_vectors(pseudo.id(), me),
              b2.backup().stored_vectors(pseudo.id(), me),
              b3.backup().stored_vectors(pseudo.id(), me));
  std::printf("(when these run out, the phone must re-bootstrap — the §7.3\n"
              "pre-generation budget trade-off applies doubly here)\n");
  (void)phone;
  return 0;
}
