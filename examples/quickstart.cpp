// Quickstart: a three-network dAuth federation in ~100 lines.
//
// Builds a simulated federation (directory + home + two backups + a serving
// network), provisions one subscriber, and walks through the three
// authentication paths of the paper:
//   1. local auth at the home network,
//   2. roaming auth through the home network (home online),
//   3. backup auth while the home network is offline.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/dauth_node.h"
#include "ran/gnb.h"

using namespace dauth;

int main() {
  // --- Simulation substrate --------------------------------------------------
  sim::Simulator simulator(/*seed=*/7);
  sim::Network network(simulator);
  sim::Rpc rpc(network);

  // Five nodes: a public directory, three operator networks, one RAN site.
  auto node_cfg = [](const char* name) {
    sim::NodeConfig cfg;
    cfg.name = name;
    cfg.access.base = ms(4);
    cfg.access.jitter_sigma = 0.2;
    return cfg;
  };
  const sim::NodeIndex dir_node = network.add_node(node_cfg("directory"));
  const sim::NodeIndex home_node = network.add_node(node_cfg("home"));
  const sim::NodeIndex backup1_node = network.add_node(node_cfg("backup-1"));
  const sim::NodeIndex backup2_node = network.add_node(node_cfg("backup-2"));
  const sim::NodeIndex serving_node = network.add_node(node_cfg("serving"));
  const sim::NodeIndex ran_node = network.add_node(node_cfg("ran"));

  // --- The federation ----------------------------------------------------------
  directory::DirectoryServer directory_server;
  directory_server.bind(rpc, dir_node);

  core::FederationConfig config;
  config.threshold = 2;           // 2-of-2 key shares must cooperate
  config.vectors_per_backup = 8;  // pre-generated challenges per backup
  config.report_interval = minutes(1);

  core::DauthNode home(rpc, home_node, NetworkId("home-net"), dir_node, directory_server,
                       config, 1);
  core::DauthNode backup1(rpc, backup1_node, NetworkId("backup-net-1"), dir_node,
                          directory_server, config, 2);
  core::DauthNode backup2(rpc, backup2_node, NetworkId("backup-net-2"), dir_node,
                          directory_server, config, 3);
  core::DauthNode serving(rpc, serving_node, NetworkId("serving-net"), dir_node,
                          directory_server, config, 4);

  // Alice is a subscriber of home-net, backed up on the two backup networks.
  const Supi alice("315010000000001");
  home.set_backups({backup1.id(), backup2.id()});
  const aka::SubscriberKeys sim_card_keys = home.provision_subscriber(alice);
  home.home().disseminate(alice, [](std::size_t backups_ok) {
    std::printf("[setup] key material disseminated to %zu backup networks\n", backups_ok);
  });
  simulator.run_until(simulator.now() + sec(5));

  // --- One UE, three attach paths ----------------------------------------------
  // Note: run_until (not run()) — with the home offline, backups keep
  // polling it to deliver their usage reports, so the event queue never
  // drains on its own. That endless polling is faithful to the paper.
  auto attach_and_report = [&](ran::Ue& ue, const char* what) {
    bool done = false;
    ue.attach([&, what](const ran::AttachRecord& record) {
      done = true;
      std::printf("[%7.1fms] %-28s %s via '%s' path%s\n", to_ms(simulator.now()), what,
                  record.success ? "SUCCESS" : "FAILED", record.path.c_str(),
                  record.key_confirmed ? " (session keys match)" : "");
    });
    while (!done) simulator.run_until(simulator.now() + ms(100));
  };

  // 1. Local authentication: the UE camps on its own home network.
  ran::Ue local_ue(rpc, ran_node, home_node, alice, sim_card_keys,
                   ran::emulated_ran_profile(config.serving_network_name));
  attach_and_report(local_ue, "local attach at home");

  // 2. Roaming: the UE appears at serving-net; home-net is online.
  ran::Ue roaming_ue(rpc, ran_node, serving_node, alice, sim_card_keys,
                     ran::emulated_ran_profile(config.serving_network_name));
  attach_and_report(roaming_ue, "roaming attach (home up)");

  // 3. Backup auth: home-net goes dark; the backups take over.
  network.node(home_node).set_online(false);
  serving.serving().set_home_health(home.id(), false);  // skip discovery timeout
  attach_and_report(roaming_ue, "roaming attach (home DOWN)");

  // The home network comes back and learns what happened while it was out.
  network.node(home_node).set_online(true);
  simulator.run_until(simulator.now() + minutes(3));
  std::printf("[report] home processed %llu usage proofs, %llu vectors replenished\n",
              static_cast<unsigned long long>(home.home().metrics().reports_processed),
              static_cast<unsigned long long>(home.home().metrics().replenishments));
  std::printf("[report] anomalies detected: %zu\n", home.home().anomalies().size());
  return 0;
}
