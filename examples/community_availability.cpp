// Community-network availability study: a year of SCN-like operations.
//
// Simulates six community sites with realistic (sub-three-nines) uptime and
// measures the user experience directly: every hour of simulated time, a
// subscriber of each site tries to authenticate at a (reliable) serving
// site. Compares a standalone deployment (auth requires the home site)
// against dAuth (backups answer while the home is down). Long outages can
// still exhaust the pre-generated vector budget — the §7.3 trade-off.
//
// This is the end-to-end, protocol-level companion to
// bench/table1_availability (which computes the same story analytically).
//
// Build & run:  ./build/examples/community_availability   (~30s)
#include <cstdio>
#include <vector>

#include "core/dauth_node.h"
#include "ran/gnb.h"
#include "sim/failure.h"

using namespace dauth;

int main() {
  sim::Simulator simulator(365);
  sim::Network network(simulator);
  sim::Rpc rpc(network);

  auto site_cfg = [](const char* name) {
    sim::NodeConfig cfg;
    cfg.name = name;
    cfg.access.base = ms(5);
    cfg.access.jitter_sigma = 0.3;
    return cfg;
  };
  const char* site_names[] = {"coworking", "school-1", "community-center-1",
                              "library-1", "school-2", "community-center-2"};
  const double mtbf_days[] = {21, 21, 14, 10, 10, 8};
  const double availability[] = {0.990, 0.990, 0.958, 0.918, 0.896, 0.872};

  const auto dir_node = network.add_node(site_cfg("directory"));
  const auto ran_node = network.add_node(site_cfg("ran"));
  directory::DirectoryServer directory_server;
  directory_server.bind(rpc, dir_node);

  core::FederationConfig config;
  config.threshold = 2;
  config.vectors_per_backup = 31;     // sized for multi-day outages (§7.3)
  config.vector_race_width = 1;       // don't burn two vectors per probe
  config.report_interval = minutes(10);

  std::vector<sim::NodeIndex> site_nodes;
  std::vector<std::unique_ptr<core::DauthNode>> sites;
  for (int i = 0; i < 6; ++i) {
    site_nodes.push_back(network.add_node(site_cfg(site_names[i])));
    sites.push_back(std::make_unique<core::DauthNode>(
        rpc, site_nodes[i], NetworkId(site_names[i]), dir_node, directory_server, config,
        500 + i));
  }

  // A dedicated, reliable serving site hosts the probes, so the comparison
  // isolates HOME availability (a standalone user doesn't roam at all, so
  // serving-side outages would only muddy the numbers).
  const auto serving_node = network.add_node(site_cfg("serving-site"));
  core::DauthNode serving_site(rpc, serving_node, NetworkId("serving-site"), dir_node,
                               directory_server, config, 999);

  // Each site homes one test subscriber, with every other site as backup.
  std::vector<aka::SubscriberKeys> keys(6);
  std::vector<std::unique_ptr<ran::Ue>> ues;
  for (int i = 0; i < 6; ++i) {
    std::vector<NetworkId> backups;
    for (int j = 0; j < 6; ++j) {
      if (j != i) backups.push_back(sites[j]->id());
    }
    sites[i]->set_backups(backups);
    const Supi supi("31501000000010" + std::to_string(i));
    keys[i] = sites[i]->provision_subscriber(supi);
    sites[i]->home().disseminate(supi);
    ues.push_back(std::make_unique<ran::Ue>(
        rpc, ran_node, serving_node, supi, keys[i],
        ran::emulated_ran_profile(config.serving_network_name)));
  }
  simulator.run();

  // A quarter-year of random outages (full year would work; quarter keeps
  // the example snappy).
  const Time horizon = 90 * kDay;
  sim::FailureInjector injector(network, &rpc);
  for (int i = 0; i < 6; ++i) {
    const double u = 1.0 - availability[i];
    const Time mtbf = static_cast<Time>(mtbf_days[i] * static_cast<double>(kDay));
    const Time mttr = static_cast<Time>(static_cast<double>(mtbf) * u / (1.0 - u));
    injector.schedule_random_outages(site_nodes[i], mtbf, mttr, horizon);
  }

  // Probe attaches every hour; track whether the home was up (what a
  // standalone deployment could have served).
  struct Tally {
    int attempts = 0;
    int successes = 0;
    int home_was_up = 0;
    int via_backup = 0;
  };
  std::vector<Tally> tally(6);

  for (Time t = minutes(60); t < horizon; t += minutes(60)) {
    simulator.at(t, [&] {
      for (int i = 0; i < 6; ++i) {
        if (ues[i]->busy()) continue;
        Tally& site_tally = tally[i];
        ++site_tally.attempts;
        if (network.node(site_nodes[i]).online()) ++site_tally.home_was_up;
        ues[i]->attach([&site_tally](const ran::AttachRecord& record) {
          if (record.success) {
            ++site_tally.successes;
            if (record.path == "backup") ++site_tally.via_backup;
          }
        });
      }
    });
  }
  simulator.run_until(horizon + minutes(5));

  std::printf("90 simulated days, one roaming probe per site every hour\n\n");
  std::printf("%-20s %9s | %11s %11s %11s\n", "home site", "site-avail",
              "standalone", "dauth-auth", "via-backup");
  for (int i = 0; i < 6; ++i) {
    const Tally& site_tally = tally[i];
    const auto pct = [&](int n) {
      return site_tally.attempts > 0 ? 100.0 * n / site_tally.attempts : 0.0;
    };
    std::printf("%-20s %8.2f%% | %10.2f%% %10.2f%% %10.2f%%\n", site_names[i],
                100.0 * injector.availability(site_nodes[i], horizon),
                pct(site_tally.home_was_up), pct(site_tally.successes),
                pct(site_tally.via_backup));
  }
  std::printf("\n'standalone' = attaches a home-site-only deployment could have\n"
              "served (home up). 'dauth-auth' = attaches dAuth actually served.\n");
  return 0;
}
