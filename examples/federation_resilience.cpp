// Federation resilience walkthrough: a Seattle-Community-Network-style day.
//
// Recreates the operational story that motivates the paper: a federation of
// small sites with imperfect uptime keeps its users authenticated through a
// multi-hour home-network outage, reconciles the books when the home
// returns, and then securely revokes a backup that is no longer trusted.
//
// Build & run:  ./build/examples/federation_resilience
#include <cstdio>

#include "core/dauth_node.h"
#include "ran/gnb.h"
#include "sim/failure.h"
#include "sim/topology.h"

using namespace dauth;

namespace {

void banner(const char* text) { std::printf("\n--- %s ---\n", text); }

}  // namespace

int main() {
  sim::Simulator simulator(20240808);
  sim::Network network(simulator);
  sim::Rpc rpc(network);

  // The Appendix C testbed: 10 heterogeneous core-capable nodes + 2 RAN sites.
  const sim::Testbed testbed = sim::build_appendix_c_testbed(network);
  const sim::NodeIndex dir_node =
      network.add_node(sim::profile(sim::NodeClass::kCloud, "directory"));

  directory::DirectoryServer directory_server;
  directory_server.bind(rpc, dir_node);

  core::FederationConfig config;
  config.threshold = 2;
  config.vectors_per_backup = 12;
  config.report_interval = minutes(5);

  // The library runs the home network; five other sites are its backups;
  // the community center doubles as the serving network for a visiting user.
  std::vector<std::unique_ptr<core::DauthNode>> nets;
  const std::vector<sim::NodeIndex> core_nodes = testbed.core_nodes();
  for (std::size_t i = 0; i < core_nodes.size(); ++i) {
    nets.push_back(std::make_unique<core::DauthNode>(
        rpc, core_nodes[i], NetworkId(network.node(core_nodes[i]).name()), dir_node,
        directory_server, config, 100 + i));
  }
  core::DauthNode& library = *nets[0];            // scn-library (home)
  core::DauthNode& community_center = *nets[1];   // serving site
  std::vector<NetworkId> backups;
  for (std::size_t i = 2; i < 8; ++i) backups.push_back(nets[i]->id());

  banner("provisioning");
  const Supi user("315010000000042");
  library.set_backups(backups);
  const auto sim_keys = library.provision_subscriber(user);
  library.home().disseminate(user, [&](std::size_t ok) {
    std::printf("library disseminated vectors+shares to %zu/%zu backups\n", ok,
                backups.size());
  });
  simulator.run();

  ran::Ue ue(rpc, testbed.ran_sites[1], community_center.node(), user, sim_keys,
             ran::emulated_ran_profile(config.serving_network_name));
  auto attach = [&](const char* label) {
    bool ok = false;
    std::string path;
    ue.attach([&](const ran::AttachRecord& r) {
      ok = r.success && r.key_confirmed;
      path = r.path;
    });
    simulator.run_until(simulator.now() + sec(20));
    std::printf("[t=%6.1fs] %-34s -> %s (%s)\n", to_sec(simulator.now()), label,
                ok ? "authenticated" : "FAILED", path.c_str());
    return ok;
  };

  banner("normal operation: visiting the community center");
  attach("attach while library online");

  banner("the library's backhaul goes down for six hours");
  sim::FailureInjector injector(network, &rpc);
  injector.schedule_outage(library.node(), simulator.now() + minutes(1), hours(6));
  simulator.run_until(simulator.now() + minutes(2));

  for (int hour = 0; hour < 3; ++hour) {
    simulator.run_until(simulator.now() + hours(1));
    attach(("attach during outage, hour " + std::to_string(hour + 1)).c_str());
  }

  banner("library back online: reports reconcile automatically");
  simulator.run_until(simulator.now() + hours(4));
  std::printf("library ingested %llu usage proofs, replenished %llu vectors, "
              "%zu anomalies\n",
              static_cast<unsigned long long>(library.home().metrics().reports_processed),
              static_cast<unsigned long long>(library.home().metrics().replenishments),
              library.home().anomalies().size());
  // The serving network's health cache re-probes asynchronously: the first
  // attach after recovery still rides the backups, the next goes direct.
  attach("attach after recovery (probe)");
  attach("attach after recovery (direct)");

  banner("one backup site is compromised: revoke it");
  const NetworkId revoked = backups.front();
  library.home().revoke_backup(revoked, [&] {
    std::printf("revoked %s: remaining backups ordered to delete its sibling "
                "shares; flood vector issued\n",
                revoked.str().c_str());
  });
  simulator.run_until(simulator.now() + minutes(1));

  // Even with the home down again, auth works via the remaining backups --
  // and the revoked site can no longer complete an authentication: every
  // other backup deleted the key shares matching its cached vectors, so a
  // serving network that (through a stale cache) still consults the revoked
  // site can never assemble a threshold of shares. Model the revocation
  // notice reaching the serving site by refreshing its directory cache.
  community_center.directory().invalidate();
  injector.schedule_outage(library.node(), simulator.now() + sec(10), hours(1));
  simulator.run_until(simulator.now() + minutes(1));
  attach("attach post-revocation, home down");

  std::printf("\nbackups' view of the revoked site's material:\n");
  for (std::size_t i = 2; i < 8; ++i) {
    std::printf("  %-24s vectors=%zu shares=%zu\n", nets[i]->id().str().c_str(),
                nets[i]->backup().stored_vectors(library.id(), user),
                nets[i]->backup().stored_shares(library.id(), user));
  }
  return 0;
}
