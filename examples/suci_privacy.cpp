// SUCI privacy walkthrough: subscriber identifiers never cross the air in
// the clear, and — unique to dAuth — backup networks can de-conceal them
// during a home-network outage because the home shares its SUCI decryption
// key at dissemination time (paper §4.2.1).
//
// Build & run:  ./build/examples/suci_privacy
#include <cstdio>

#include "aka/suci.h"
#include "core/dauth_node.h"
#include "ran/gnb.h"

using namespace dauth;

int main() {
  std::printf("== SUCI concealment primitives ==\n");
  crypto::DeterministicDrbg rng("suci-example", 1);
  const crypto::X25519KeyPair home_keys = crypto::x25519_generate(rng);
  const Supi supi("315010000000077");

  const aka::Suci suci = aka::conceal_supi(supi, home_keys.public_key, rng);
  std::printf("SUPI              : %s\n", supi.str().c_str());
  std::printf("SUCI routing      : mcc=%s mnc=%s (cleartext, needed to route)\n",
              suci.mcc.c_str(), suci.mnc.c_str());
  std::printf("SUCI ciphertext   : %s\n", to_hex(suci.ciphertext).c_str());
  std::printf("SUCI eph. pubkey  : %s\n", to_hex(suci.ephemeral_public).c_str());

  const aka::Suci again = aka::conceal_supi(supi, home_keys.public_key, rng);
  std::printf("re-concealed      : %s  (fresh ephemeral key -> unlinkable)\n",
              to_hex(again.ciphertext).c_str());

  const auto recovered = aka::deconceal_suci(suci, home_keys.secret);
  std::printf("home de-conceals  : %s\n",
              recovered ? recovered->str().c_str() : "(failed)");

  std::printf("\n== SUCI attach through a backup network (home offline) ==\n");
  sim::Simulator simulator(11);
  sim::Network network(simulator);
  sim::Rpc rpc(network);
  auto cfg = [](const char* name) {
    sim::NodeConfig c;
    c.name = name;
    c.access.base = ms(3);
    return c;
  };
  const auto dir_node = network.add_node(cfg("directory"));
  const auto home_node = network.add_node(cfg("home"));
  const auto b1_node = network.add_node(cfg("backup-1"));
  const auto b2_node = network.add_node(cfg("backup-2"));
  const auto serving_node = network.add_node(cfg("serving"));
  const auto ran_node = network.add_node(cfg("ran"));

  directory::DirectoryServer directory_server;
  directory_server.bind(rpc, dir_node);

  core::FederationConfig config;
  config.threshold = 2;
  config.vectors_per_backup = 4;
  config.report_interval = 0;

  core::DauthNode home(rpc, home_node, NetworkId("home-net"), dir_node, directory_server,
                       config, 1);
  core::DauthNode b1(rpc, b1_node, NetworkId("backup-1"), dir_node, directory_server,
                     config, 2);
  core::DauthNode b2(rpc, b2_node, NetworkId("backup-2"), dir_node, directory_server,
                     config, 3);
  core::DauthNode serving(rpc, serving_node, NetworkId("serving-net"), dir_node,
                          directory_server, config, 4);

  home.set_backups({b1.id(), b2.id()});
  const auto keys = home.provision_subscriber(supi);
  home.home().disseminate(supi);
  simulator.run();

  network.node(home_node).set_online(false);
  serving.serving().set_home_health(home.id(), false);

  auto ue_profile = ran::emulated_ran_profile(config.serving_network_name);
  ue_profile.use_suci = true;
  ran::Ue ue(rpc, ran_node, serving_node, supi, keys, ue_profile);
  ue.configure_suci(home.id(), home.suci_keys().public_key);

  ue.attach([&](const ran::AttachRecord& record) {
    std::printf("attach with concealed id, home offline: %s via '%s'\n",
                record.success ? "SUCCESS" : "FAILED", record.path.c_str());
    std::printf("(the backup de-concealed the SUCI with the key the home network\n"
                " shared during dissemination; the identifier never crossed the\n"
                " air interface in the clear)\n");
  });
  simulator.run();
  return 0;
}
