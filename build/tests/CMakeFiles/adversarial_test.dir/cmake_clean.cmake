file(REMOVE_RECURSE
  "CMakeFiles/adversarial_test.dir/integration/adversarial_test.cpp.o"
  "CMakeFiles/adversarial_test.dir/integration/adversarial_test.cpp.o.d"
  "adversarial_test"
  "adversarial_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adversarial_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
