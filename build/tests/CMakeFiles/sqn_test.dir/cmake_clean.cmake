file(REMOVE_RECURSE
  "CMakeFiles/sqn_test.dir/aka/sqn_test.cpp.o"
  "CMakeFiles/sqn_test.dir/aka/sqn_test.cpp.o.d"
  "sqn_test"
  "sqn_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
