# Empty compiler generated dependencies file for sqn_test.
# This may be replaced when dependencies are built.
