file(REMOVE_RECURSE
  "CMakeFiles/resync_test.dir/integration/resync_test.cpp.o"
  "CMakeFiles/resync_test.dir/integration/resync_test.cpp.o.d"
  "resync_test"
  "resync_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resync_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
