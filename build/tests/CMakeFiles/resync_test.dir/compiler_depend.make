# Empty compiler generated dependencies file for resync_test.
# This may be replaced when dependencies are built.
