file(REMOVE_RECURSE
  "CMakeFiles/feldman_test.dir/crypto/feldman_test.cpp.o"
  "CMakeFiles/feldman_test.dir/crypto/feldman_test.cpp.o.d"
  "feldman_test"
  "feldman_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feldman_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
