# Empty compiler generated dependencies file for standalone_core_test.
# This may be replaced when dependencies are built.
