file(REMOVE_RECURSE
  "CMakeFiles/standalone_core_test.dir/baseline/standalone_core_test.cpp.o"
  "CMakeFiles/standalone_core_test.dir/baseline/standalone_core_test.cpp.o.d"
  "standalone_core_test"
  "standalone_core_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/standalone_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
