# Empty dependencies file for ed25519_test.
# This may be replaced when dependencies are built.
