file(REMOVE_RECURSE
  "CMakeFiles/ed25519_test.dir/crypto/ed25519_test.cpp.o"
  "CMakeFiles/ed25519_test.dir/crypto/ed25519_test.cpp.o.d"
  "ed25519_test"
  "ed25519_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ed25519_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
