# Empty dependencies file for latency_test.
# This may be replaced when dependencies are built.
