file(REMOVE_RECURSE
  "CMakeFiles/latency_test.dir/sim/latency_test.cpp.o"
  "CMakeFiles/latency_test.dir/sim/latency_test.cpp.o.d"
  "latency_test"
  "latency_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
