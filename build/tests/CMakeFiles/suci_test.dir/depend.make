# Empty dependencies file for suci_test.
# This may be replaced when dependencies are built.
