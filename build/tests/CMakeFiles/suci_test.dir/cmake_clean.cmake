file(REMOVE_RECURSE
  "CMakeFiles/suci_test.dir/aka/suci_test.cpp.o"
  "CMakeFiles/suci_test.dir/aka/suci_test.cpp.o.d"
  "suci_test"
  "suci_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/suci_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
