# Empty dependencies file for aka4g_test.
# This may be replaced when dependencies are built.
