file(REMOVE_RECURSE
  "CMakeFiles/aka4g_test.dir/aka/aka4g_test.cpp.o"
  "CMakeFiles/aka4g_test.dir/aka/aka4g_test.cpp.o.d"
  "aka4g_test"
  "aka4g_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aka4g_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
