file(REMOVE_RECURSE
  "CMakeFiles/aes128_test.dir/crypto/aes128_test.cpp.o"
  "CMakeFiles/aes128_test.dir/crypto/aes128_test.cpp.o.d"
  "aes128_test"
  "aes128_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aes128_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
