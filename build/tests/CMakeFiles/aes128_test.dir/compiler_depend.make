# Empty compiler generated dependencies file for aes128_test.
# This may be replaced when dependencies are built.
