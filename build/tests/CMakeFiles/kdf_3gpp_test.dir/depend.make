# Empty dependencies file for kdf_3gpp_test.
# This may be replaced when dependencies are built.
