file(REMOVE_RECURSE
  "CMakeFiles/kdf_3gpp_test.dir/crypto/kdf_3gpp_test.cpp.o"
  "CMakeFiles/kdf_3gpp_test.dir/crypto/kdf_3gpp_test.cpp.o.d"
  "kdf_3gpp_test"
  "kdf_3gpp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kdf_3gpp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
