# Empty dependencies file for dauth_lint_test.
# This may be replaced when dependencies are built.
