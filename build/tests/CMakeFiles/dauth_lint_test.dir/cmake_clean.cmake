file(REMOVE_RECURSE
  "CMakeFiles/dauth_lint_test.dir/tools/dauth_lint_test.cpp.o"
  "CMakeFiles/dauth_lint_test.dir/tools/dauth_lint_test.cpp.o.d"
  "dauth_lint_test"
  "dauth_lint_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dauth_lint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
