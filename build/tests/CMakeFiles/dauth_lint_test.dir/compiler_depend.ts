# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for dauth_lint_test.
