file(REMOVE_RECURSE
  "CMakeFiles/curve25519_test.dir/crypto/curve25519_test.cpp.o"
  "CMakeFiles/curve25519_test.dir/crypto/curve25519_test.cpp.o.d"
  "curve25519_test"
  "curve25519_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/curve25519_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
