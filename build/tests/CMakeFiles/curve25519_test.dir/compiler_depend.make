# Empty compiler generated dependencies file for curve25519_test.
# This may be replaced when dependencies are built.
