file(REMOVE_RECURSE
  "CMakeFiles/guti_test.dir/integration/guti_test.cpp.o"
  "CMakeFiles/guti_test.dir/integration/guti_test.cpp.o.d"
  "guti_test"
  "guti_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/guti_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
