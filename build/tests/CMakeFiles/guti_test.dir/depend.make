# Empty dependencies file for guti_test.
# This may be replaced when dependencies are built.
