file(REMOVE_RECURSE
  "CMakeFiles/shamir_test.dir/crypto/shamir_test.cpp.o"
  "CMakeFiles/shamir_test.dir/crypto/shamir_test.cpp.o.d"
  "shamir_test"
  "shamir_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shamir_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
