# Empty compiler generated dependencies file for sha512_test.
# This may be replaced when dependencies are built.
