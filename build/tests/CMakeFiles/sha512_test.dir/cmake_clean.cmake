file(REMOVE_RECURSE
  "CMakeFiles/sha512_test.dir/crypto/sha512_test.cpp.o"
  "CMakeFiles/sha512_test.dir/crypto/sha512_test.cpp.o.d"
  "sha512_test"
  "sha512_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sha512_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
