# Empty dependencies file for x25519_test.
# This may be replaced when dependencies are built.
