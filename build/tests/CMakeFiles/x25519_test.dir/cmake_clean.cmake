file(REMOVE_RECURSE
  "CMakeFiles/x25519_test.dir/crypto/x25519_test.cpp.o"
  "CMakeFiles/x25519_test.dir/crypto/x25519_test.cpp.o.d"
  "x25519_test"
  "x25519_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/x25519_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
