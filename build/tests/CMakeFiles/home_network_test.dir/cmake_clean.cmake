file(REMOVE_RECURSE
  "CMakeFiles/home_network_test.dir/core/home_network_test.cpp.o"
  "CMakeFiles/home_network_test.dir/core/home_network_test.cpp.o.d"
  "home_network_test"
  "home_network_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/home_network_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
