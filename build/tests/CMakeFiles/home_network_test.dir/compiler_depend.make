# Empty compiler generated dependencies file for home_network_test.
# This may be replaced when dependencies are built.
