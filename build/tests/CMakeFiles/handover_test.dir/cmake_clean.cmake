file(REMOVE_RECURSE
  "CMakeFiles/handover_test.dir/integration/handover_test.cpp.o"
  "CMakeFiles/handover_test.dir/integration/handover_test.cpp.o.d"
  "handover_test"
  "handover_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/handover_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
