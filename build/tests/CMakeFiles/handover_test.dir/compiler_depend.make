# Empty compiler generated dependencies file for handover_test.
# This may be replaced when dependencies are built.
