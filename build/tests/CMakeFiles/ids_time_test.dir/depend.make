# Empty dependencies file for ids_time_test.
# This may be replaced when dependencies are built.
