file(REMOVE_RECURSE
  "CMakeFiles/ids_time_test.dir/common/ids_time_test.cpp.o"
  "CMakeFiles/ids_time_test.dir/common/ids_time_test.cpp.o.d"
  "ids_time_test"
  "ids_time_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ids_time_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
