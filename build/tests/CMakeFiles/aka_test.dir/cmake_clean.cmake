file(REMOVE_RECURSE
  "CMakeFiles/aka_test.dir/aka/aka_test.cpp.o"
  "CMakeFiles/aka_test.dir/aka/aka_test.cpp.o.d"
  "aka_test"
  "aka_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aka_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
