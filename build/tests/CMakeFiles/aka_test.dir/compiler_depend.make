# Empty compiler generated dependencies file for aka_test.
# This may be replaced when dependencies are built.
