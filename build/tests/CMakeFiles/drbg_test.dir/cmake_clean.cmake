file(REMOVE_RECURSE
  "CMakeFiles/drbg_test.dir/crypto/drbg_test.cpp.o"
  "CMakeFiles/drbg_test.dir/crypto/drbg_test.cpp.o.d"
  "drbg_test"
  "drbg_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drbg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
