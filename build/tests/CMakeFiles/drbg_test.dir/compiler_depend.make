# Empty compiler generated dependencies file for drbg_test.
# This may be replaced when dependencies are built.
