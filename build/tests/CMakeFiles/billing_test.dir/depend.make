# Empty dependencies file for billing_test.
# This may be replaced when dependencies are built.
