file(REMOVE_RECURSE
  "CMakeFiles/billing_test.dir/core/billing_test.cpp.o"
  "CMakeFiles/billing_test.dir/core/billing_test.cpp.o.d"
  "billing_test"
  "billing_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/billing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
