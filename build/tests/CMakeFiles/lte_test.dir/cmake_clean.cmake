file(REMOVE_RECURSE
  "CMakeFiles/lte_test.dir/baseline/lte_test.cpp.o"
  "CMakeFiles/lte_test.dir/baseline/lte_test.cpp.o.d"
  "lte_test"
  "lte_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lte_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
