# Empty dependencies file for lte_test.
# This may be replaced when dependencies are built.
