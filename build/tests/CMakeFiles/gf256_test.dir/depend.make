# Empty dependencies file for gf256_test.
# This may be replaced when dependencies are built.
