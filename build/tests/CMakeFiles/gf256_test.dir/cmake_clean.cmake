file(REMOVE_RECURSE
  "CMakeFiles/gf256_test.dir/crypto/gf256_test.cpp.o"
  "CMakeFiles/gf256_test.dir/crypto/gf256_test.cpp.o.d"
  "gf256_test"
  "gf256_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gf256_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
