file(REMOVE_RECURSE
  "CMakeFiles/ran_test.dir/ran/ran_test.cpp.o"
  "CMakeFiles/ran_test.dir/ran/ran_test.cpp.o.d"
  "ran_test"
  "ran_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ran_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
