# Empty dependencies file for ran_test.
# This may be replaced when dependencies are built.
