# Empty dependencies file for revocation_test.
# This may be replaced when dependencies are built.
