file(REMOVE_RECURSE
  "CMakeFiles/revocation_test.dir/integration/revocation_test.cpp.o"
  "CMakeFiles/revocation_test.dir/integration/revocation_test.cpp.o.d"
  "revocation_test"
  "revocation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/revocation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
