file(REMOVE_RECURSE
  "CMakeFiles/event_loop_test.dir/sim/event_loop_test.cpp.o"
  "CMakeFiles/event_loop_test.dir/sim/event_loop_test.cpp.o.d"
  "event_loop_test"
  "event_loop_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/event_loop_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
