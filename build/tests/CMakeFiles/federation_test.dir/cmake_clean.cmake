file(REMOVE_RECURSE
  "CMakeFiles/federation_test.dir/integration/federation_test.cpp.o"
  "CMakeFiles/federation_test.dir/integration/federation_test.cpp.o.d"
  "federation_test"
  "federation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/federation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
