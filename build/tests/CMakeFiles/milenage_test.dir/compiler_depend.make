# Empty compiler generated dependencies file for milenage_test.
# This may be replaced when dependencies are built.
