file(REMOVE_RECURSE
  "CMakeFiles/milenage_test.dir/crypto/milenage_test.cpp.o"
  "CMakeFiles/milenage_test.dir/crypto/milenage_test.cpp.o.d"
  "milenage_test"
  "milenage_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/milenage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
