file(REMOVE_RECURSE
  "CMakeFiles/dauth_ran.dir/ran/gnb.cpp.o"
  "CMakeFiles/dauth_ran.dir/ran/gnb.cpp.o.d"
  "CMakeFiles/dauth_ran.dir/ran/load_generator.cpp.o"
  "CMakeFiles/dauth_ran.dir/ran/load_generator.cpp.o.d"
  "CMakeFiles/dauth_ran.dir/ran/ue.cpp.o"
  "CMakeFiles/dauth_ran.dir/ran/ue.cpp.o.d"
  "libdauth_ran.a"
  "libdauth_ran.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dauth_ran.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
