file(REMOVE_RECURSE
  "libdauth_ran.a"
)
