# Empty dependencies file for dauth_ran.
# This may be replaced when dependencies are built.
