
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/aes128.cpp" "src/CMakeFiles/dauth_crypto.dir/crypto/aes128.cpp.o" "gcc" "src/CMakeFiles/dauth_crypto.dir/crypto/aes128.cpp.o.d"
  "/root/repo/src/crypto/curve25519.cpp" "src/CMakeFiles/dauth_crypto.dir/crypto/curve25519.cpp.o" "gcc" "src/CMakeFiles/dauth_crypto.dir/crypto/curve25519.cpp.o.d"
  "/root/repo/src/crypto/drbg.cpp" "src/CMakeFiles/dauth_crypto.dir/crypto/drbg.cpp.o" "gcc" "src/CMakeFiles/dauth_crypto.dir/crypto/drbg.cpp.o.d"
  "/root/repo/src/crypto/ed25519.cpp" "src/CMakeFiles/dauth_crypto.dir/crypto/ed25519.cpp.o" "gcc" "src/CMakeFiles/dauth_crypto.dir/crypto/ed25519.cpp.o.d"
  "/root/repo/src/crypto/feldman.cpp" "src/CMakeFiles/dauth_crypto.dir/crypto/feldman.cpp.o" "gcc" "src/CMakeFiles/dauth_crypto.dir/crypto/feldman.cpp.o.d"
  "/root/repo/src/crypto/hmac.cpp" "src/CMakeFiles/dauth_crypto.dir/crypto/hmac.cpp.o" "gcc" "src/CMakeFiles/dauth_crypto.dir/crypto/hmac.cpp.o.d"
  "/root/repo/src/crypto/kdf_3gpp.cpp" "src/CMakeFiles/dauth_crypto.dir/crypto/kdf_3gpp.cpp.o" "gcc" "src/CMakeFiles/dauth_crypto.dir/crypto/kdf_3gpp.cpp.o.d"
  "/root/repo/src/crypto/milenage.cpp" "src/CMakeFiles/dauth_crypto.dir/crypto/milenage.cpp.o" "gcc" "src/CMakeFiles/dauth_crypto.dir/crypto/milenage.cpp.o.d"
  "/root/repo/src/crypto/sha256.cpp" "src/CMakeFiles/dauth_crypto.dir/crypto/sha256.cpp.o" "gcc" "src/CMakeFiles/dauth_crypto.dir/crypto/sha256.cpp.o.d"
  "/root/repo/src/crypto/sha512.cpp" "src/CMakeFiles/dauth_crypto.dir/crypto/sha512.cpp.o" "gcc" "src/CMakeFiles/dauth_crypto.dir/crypto/sha512.cpp.o.d"
  "/root/repo/src/crypto/shamir.cpp" "src/CMakeFiles/dauth_crypto.dir/crypto/shamir.cpp.o" "gcc" "src/CMakeFiles/dauth_crypto.dir/crypto/shamir.cpp.o.d"
  "/root/repo/src/crypto/x25519.cpp" "src/CMakeFiles/dauth_crypto.dir/crypto/x25519.cpp.o" "gcc" "src/CMakeFiles/dauth_crypto.dir/crypto/x25519.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dauth_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
