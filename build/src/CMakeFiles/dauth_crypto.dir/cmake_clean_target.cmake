file(REMOVE_RECURSE
  "libdauth_crypto.a"
)
