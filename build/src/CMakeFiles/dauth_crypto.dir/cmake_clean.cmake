file(REMOVE_RECURSE
  "CMakeFiles/dauth_crypto.dir/crypto/aes128.cpp.o"
  "CMakeFiles/dauth_crypto.dir/crypto/aes128.cpp.o.d"
  "CMakeFiles/dauth_crypto.dir/crypto/curve25519.cpp.o"
  "CMakeFiles/dauth_crypto.dir/crypto/curve25519.cpp.o.d"
  "CMakeFiles/dauth_crypto.dir/crypto/drbg.cpp.o"
  "CMakeFiles/dauth_crypto.dir/crypto/drbg.cpp.o.d"
  "CMakeFiles/dauth_crypto.dir/crypto/ed25519.cpp.o"
  "CMakeFiles/dauth_crypto.dir/crypto/ed25519.cpp.o.d"
  "CMakeFiles/dauth_crypto.dir/crypto/feldman.cpp.o"
  "CMakeFiles/dauth_crypto.dir/crypto/feldman.cpp.o.d"
  "CMakeFiles/dauth_crypto.dir/crypto/hmac.cpp.o"
  "CMakeFiles/dauth_crypto.dir/crypto/hmac.cpp.o.d"
  "CMakeFiles/dauth_crypto.dir/crypto/kdf_3gpp.cpp.o"
  "CMakeFiles/dauth_crypto.dir/crypto/kdf_3gpp.cpp.o.d"
  "CMakeFiles/dauth_crypto.dir/crypto/milenage.cpp.o"
  "CMakeFiles/dauth_crypto.dir/crypto/milenage.cpp.o.d"
  "CMakeFiles/dauth_crypto.dir/crypto/sha256.cpp.o"
  "CMakeFiles/dauth_crypto.dir/crypto/sha256.cpp.o.d"
  "CMakeFiles/dauth_crypto.dir/crypto/sha512.cpp.o"
  "CMakeFiles/dauth_crypto.dir/crypto/sha512.cpp.o.d"
  "CMakeFiles/dauth_crypto.dir/crypto/shamir.cpp.o"
  "CMakeFiles/dauth_crypto.dir/crypto/shamir.cpp.o.d"
  "CMakeFiles/dauth_crypto.dir/crypto/x25519.cpp.o"
  "CMakeFiles/dauth_crypto.dir/crypto/x25519.cpp.o.d"
  "libdauth_crypto.a"
  "libdauth_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dauth_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
