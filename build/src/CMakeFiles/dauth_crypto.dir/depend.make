# Empty dependencies file for dauth_crypto.
# This may be replaced when dependencies are built.
