# Empty compiler generated dependencies file for dauth_core.
# This may be replaced when dependencies are built.
