file(REMOVE_RECURSE
  "libdauth_core.a"
)
