file(REMOVE_RECURSE
  "CMakeFiles/dauth_core.dir/core/backup_network.cpp.o"
  "CMakeFiles/dauth_core.dir/core/backup_network.cpp.o.d"
  "CMakeFiles/dauth_core.dir/core/dauth_node.cpp.o"
  "CMakeFiles/dauth_core.dir/core/dauth_node.cpp.o.d"
  "CMakeFiles/dauth_core.dir/core/home_network.cpp.o"
  "CMakeFiles/dauth_core.dir/core/home_network.cpp.o.d"
  "CMakeFiles/dauth_core.dir/core/messages.cpp.o"
  "CMakeFiles/dauth_core.dir/core/messages.cpp.o.d"
  "CMakeFiles/dauth_core.dir/core/serving_network.cpp.o"
  "CMakeFiles/dauth_core.dir/core/serving_network.cpp.o.d"
  "libdauth_core.a"
  "libdauth_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dauth_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
