
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/store/kv_store.cpp" "src/CMakeFiles/dauth_store.dir/store/kv_store.cpp.o" "gcc" "src/CMakeFiles/dauth_store.dir/store/kv_store.cpp.o.d"
  "/root/repo/src/store/wal.cpp" "src/CMakeFiles/dauth_store.dir/store/wal.cpp.o" "gcc" "src/CMakeFiles/dauth_store.dir/store/wal.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dauth_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dauth_wire.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
