# Empty dependencies file for dauth_store.
# This may be replaced when dependencies are built.
