file(REMOVE_RECURSE
  "libdauth_store.a"
)
