file(REMOVE_RECURSE
  "CMakeFiles/dauth_store.dir/store/kv_store.cpp.o"
  "CMakeFiles/dauth_store.dir/store/kv_store.cpp.o.d"
  "CMakeFiles/dauth_store.dir/store/wal.cpp.o"
  "CMakeFiles/dauth_store.dir/store/wal.cpp.o.d"
  "libdauth_store.a"
  "libdauth_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dauth_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
