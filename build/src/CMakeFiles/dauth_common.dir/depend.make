# Empty dependencies file for dauth_common.
# This may be replaced when dependencies are built.
