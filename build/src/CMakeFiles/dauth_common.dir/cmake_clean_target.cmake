file(REMOVE_RECURSE
  "libdauth_common.a"
)
