file(REMOVE_RECURSE
  "CMakeFiles/dauth_common.dir/common/bytes.cpp.o"
  "CMakeFiles/dauth_common.dir/common/bytes.cpp.o.d"
  "CMakeFiles/dauth_common.dir/common/rng.cpp.o"
  "CMakeFiles/dauth_common.dir/common/rng.cpp.o.d"
  "CMakeFiles/dauth_common.dir/common/secret.cpp.o"
  "CMakeFiles/dauth_common.dir/common/secret.cpp.o.d"
  "CMakeFiles/dauth_common.dir/common/stats.cpp.o"
  "CMakeFiles/dauth_common.dir/common/stats.cpp.o.d"
  "CMakeFiles/dauth_common.dir/common/time.cpp.o"
  "CMakeFiles/dauth_common.dir/common/time.cpp.o.d"
  "libdauth_common.a"
  "libdauth_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dauth_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
