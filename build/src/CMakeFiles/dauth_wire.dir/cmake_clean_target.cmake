file(REMOVE_RECURSE
  "libdauth_wire.a"
)
