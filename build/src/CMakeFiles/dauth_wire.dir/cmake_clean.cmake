file(REMOVE_RECURSE
  "CMakeFiles/dauth_wire.dir/wire/reader.cpp.o"
  "CMakeFiles/dauth_wire.dir/wire/reader.cpp.o.d"
  "CMakeFiles/dauth_wire.dir/wire/writer.cpp.o"
  "CMakeFiles/dauth_wire.dir/wire/writer.cpp.o.d"
  "libdauth_wire.a"
  "libdauth_wire.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dauth_wire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
