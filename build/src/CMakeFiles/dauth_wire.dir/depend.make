# Empty dependencies file for dauth_wire.
# This may be replaced when dependencies are built.
