
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/event_loop.cpp" "src/CMakeFiles/dauth_sim.dir/sim/event_loop.cpp.o" "gcc" "src/CMakeFiles/dauth_sim.dir/sim/event_loop.cpp.o.d"
  "/root/repo/src/sim/failure.cpp" "src/CMakeFiles/dauth_sim.dir/sim/failure.cpp.o" "gcc" "src/CMakeFiles/dauth_sim.dir/sim/failure.cpp.o.d"
  "/root/repo/src/sim/latency.cpp" "src/CMakeFiles/dauth_sim.dir/sim/latency.cpp.o" "gcc" "src/CMakeFiles/dauth_sim.dir/sim/latency.cpp.o.d"
  "/root/repo/src/sim/network.cpp" "src/CMakeFiles/dauth_sim.dir/sim/network.cpp.o" "gcc" "src/CMakeFiles/dauth_sim.dir/sim/network.cpp.o.d"
  "/root/repo/src/sim/node.cpp" "src/CMakeFiles/dauth_sim.dir/sim/node.cpp.o" "gcc" "src/CMakeFiles/dauth_sim.dir/sim/node.cpp.o.d"
  "/root/repo/src/sim/rpc.cpp" "src/CMakeFiles/dauth_sim.dir/sim/rpc.cpp.o" "gcc" "src/CMakeFiles/dauth_sim.dir/sim/rpc.cpp.o.d"
  "/root/repo/src/sim/topology.cpp" "src/CMakeFiles/dauth_sim.dir/sim/topology.cpp.o" "gcc" "src/CMakeFiles/dauth_sim.dir/sim/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dauth_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
