# Empty dependencies file for dauth_sim.
# This may be replaced when dependencies are built.
