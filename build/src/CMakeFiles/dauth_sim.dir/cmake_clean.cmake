file(REMOVE_RECURSE
  "CMakeFiles/dauth_sim.dir/sim/event_loop.cpp.o"
  "CMakeFiles/dauth_sim.dir/sim/event_loop.cpp.o.d"
  "CMakeFiles/dauth_sim.dir/sim/failure.cpp.o"
  "CMakeFiles/dauth_sim.dir/sim/failure.cpp.o.d"
  "CMakeFiles/dauth_sim.dir/sim/latency.cpp.o"
  "CMakeFiles/dauth_sim.dir/sim/latency.cpp.o.d"
  "CMakeFiles/dauth_sim.dir/sim/network.cpp.o"
  "CMakeFiles/dauth_sim.dir/sim/network.cpp.o.d"
  "CMakeFiles/dauth_sim.dir/sim/node.cpp.o"
  "CMakeFiles/dauth_sim.dir/sim/node.cpp.o.d"
  "CMakeFiles/dauth_sim.dir/sim/rpc.cpp.o"
  "CMakeFiles/dauth_sim.dir/sim/rpc.cpp.o.d"
  "CMakeFiles/dauth_sim.dir/sim/topology.cpp.o"
  "CMakeFiles/dauth_sim.dir/sim/topology.cpp.o.d"
  "libdauth_sim.a"
  "libdauth_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dauth_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
