file(REMOVE_RECURSE
  "libdauth_sim.a"
)
