file(REMOVE_RECURSE
  "CMakeFiles/dauth_aka.dir/aka/auth_vector.cpp.o"
  "CMakeFiles/dauth_aka.dir/aka/auth_vector.cpp.o.d"
  "CMakeFiles/dauth_aka.dir/aka/sim_card.cpp.o"
  "CMakeFiles/dauth_aka.dir/aka/sim_card.cpp.o.d"
  "CMakeFiles/dauth_aka.dir/aka/sqn.cpp.o"
  "CMakeFiles/dauth_aka.dir/aka/sqn.cpp.o.d"
  "CMakeFiles/dauth_aka.dir/aka/suci.cpp.o"
  "CMakeFiles/dauth_aka.dir/aka/suci.cpp.o.d"
  "libdauth_aka.a"
  "libdauth_aka.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dauth_aka.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
