file(REMOVE_RECURSE
  "libdauth_aka.a"
)
