
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/aka/auth_vector.cpp" "src/CMakeFiles/dauth_aka.dir/aka/auth_vector.cpp.o" "gcc" "src/CMakeFiles/dauth_aka.dir/aka/auth_vector.cpp.o.d"
  "/root/repo/src/aka/sim_card.cpp" "src/CMakeFiles/dauth_aka.dir/aka/sim_card.cpp.o" "gcc" "src/CMakeFiles/dauth_aka.dir/aka/sim_card.cpp.o.d"
  "/root/repo/src/aka/sqn.cpp" "src/CMakeFiles/dauth_aka.dir/aka/sqn.cpp.o" "gcc" "src/CMakeFiles/dauth_aka.dir/aka/sqn.cpp.o.d"
  "/root/repo/src/aka/suci.cpp" "src/CMakeFiles/dauth_aka.dir/aka/suci.cpp.o" "gcc" "src/CMakeFiles/dauth_aka.dir/aka/suci.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dauth_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dauth_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dauth_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
