# Empty dependencies file for dauth_aka.
# This may be replaced when dependencies are built.
