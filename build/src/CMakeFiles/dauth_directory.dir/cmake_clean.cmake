file(REMOVE_RECURSE
  "CMakeFiles/dauth_directory.dir/directory/client.cpp.o"
  "CMakeFiles/dauth_directory.dir/directory/client.cpp.o.d"
  "CMakeFiles/dauth_directory.dir/directory/directory.cpp.o"
  "CMakeFiles/dauth_directory.dir/directory/directory.cpp.o.d"
  "libdauth_directory.a"
  "libdauth_directory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dauth_directory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
