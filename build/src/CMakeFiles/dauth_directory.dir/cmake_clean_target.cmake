file(REMOVE_RECURSE
  "libdauth_directory.a"
)
