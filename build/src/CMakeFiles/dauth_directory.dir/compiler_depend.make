# Empty compiler generated dependencies file for dauth_directory.
# This may be replaced when dependencies are built.
