file(REMOVE_RECURSE
  "CMakeFiles/dauth_baseline.dir/baseline/standalone_core.cpp.o"
  "CMakeFiles/dauth_baseline.dir/baseline/standalone_core.cpp.o.d"
  "libdauth_baseline.a"
  "libdauth_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dauth_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
