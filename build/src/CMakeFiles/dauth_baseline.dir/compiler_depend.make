# Empty compiler generated dependencies file for dauth_baseline.
# This may be replaced when dependencies are built.
