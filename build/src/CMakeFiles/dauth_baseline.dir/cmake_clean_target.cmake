file(REMOVE_RECURSE
  "libdauth_baseline.a"
)
