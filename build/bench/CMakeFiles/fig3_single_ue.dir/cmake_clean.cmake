file(REMOVE_RECURSE
  "CMakeFiles/fig3_single_ue.dir/fig3_single_ue.cpp.o"
  "CMakeFiles/fig3_single_ue.dir/fig3_single_ue.cpp.o.d"
  "fig3_single_ue"
  "fig3_single_ue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_single_ue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
