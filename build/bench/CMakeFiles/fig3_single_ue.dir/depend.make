# Empty dependencies file for fig3_single_ue.
# This may be replaced when dependencies are built.
