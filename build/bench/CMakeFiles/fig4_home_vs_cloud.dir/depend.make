# Empty dependencies file for fig4_home_vs_cloud.
# This may be replaced when dependencies are built.
