file(REMOVE_RECURSE
  "CMakeFiles/fig4_home_vs_cloud.dir/fig4_home_vs_cloud.cpp.o"
  "CMakeFiles/fig4_home_vs_cloud.dir/fig4_home_vs_cloud.cpp.o.d"
  "fig4_home_vs_cloud"
  "fig4_home_vs_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_home_vs_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
