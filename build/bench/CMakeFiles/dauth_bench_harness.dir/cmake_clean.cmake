file(REMOVE_RECURSE
  "CMakeFiles/dauth_bench_harness.dir/harness.cpp.o"
  "CMakeFiles/dauth_bench_harness.dir/harness.cpp.o.d"
  "libdauth_bench_harness.a"
  "libdauth_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dauth_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
