file(REMOVE_RECURSE
  "libdauth_bench_harness.a"
)
