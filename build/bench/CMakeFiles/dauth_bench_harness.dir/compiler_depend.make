# Empty compiler generated dependencies file for dauth_bench_harness.
# This may be replaced when dependencies are built.
