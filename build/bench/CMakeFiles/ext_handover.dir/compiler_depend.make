# Empty compiler generated dependencies file for ext_handover.
# This may be replaced when dependencies are built.
