file(REMOVE_RECURSE
  "CMakeFiles/ext_handover.dir/ext_handover.cpp.o"
  "CMakeFiles/ext_handover.dir/ext_handover.cpp.o.d"
  "ext_handover"
  "ext_handover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_handover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
