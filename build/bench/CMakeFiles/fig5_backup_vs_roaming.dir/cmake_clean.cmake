file(REMOVE_RECURSE
  "CMakeFiles/fig5_backup_vs_roaming.dir/fig5_backup_vs_roaming.cpp.o"
  "CMakeFiles/fig5_backup_vs_roaming.dir/fig5_backup_vs_roaming.cpp.o.d"
  "fig5_backup_vs_roaming"
  "fig5_backup_vs_roaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_backup_vs_roaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
