# Empty compiler generated dependencies file for fig5_backup_vs_roaming.
# This may be replaced when dependencies are built.
