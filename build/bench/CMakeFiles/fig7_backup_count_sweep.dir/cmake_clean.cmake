file(REMOVE_RECURSE
  "CMakeFiles/fig7_backup_count_sweep.dir/fig7_backup_count_sweep.cpp.o"
  "CMakeFiles/fig7_backup_count_sweep.dir/fig7_backup_count_sweep.cpp.o.d"
  "fig7_backup_count_sweep"
  "fig7_backup_count_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_backup_count_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
