# Empty compiler generated dependencies file for fig7_backup_count_sweep.
# This may be replaced when dependencies are built.
