# Empty compiler generated dependencies file for table1_availability.
# This may be replaced when dependencies are built.
