file(REMOVE_RECURSE
  "CMakeFiles/table1_availability.dir/table1_availability.cpp.o"
  "CMakeFiles/table1_availability.dir/table1_availability.cpp.o.d"
  "table1_availability"
  "table1_availability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_availability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
