file(REMOVE_RECURSE
  "CMakeFiles/dauth_lint_cli.dir/dauth_lint.cpp.o"
  "CMakeFiles/dauth_lint_cli.dir/dauth_lint.cpp.o.d"
  "dauth-lint"
  "dauth-lint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dauth_lint_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
