# Empty dependencies file for dauth_lint_cli.
# This may be replaced when dependencies are built.
