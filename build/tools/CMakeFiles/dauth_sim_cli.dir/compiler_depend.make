# Empty compiler generated dependencies file for dauth_sim_cli.
# This may be replaced when dependencies are built.
