file(REMOVE_RECURSE
  "CMakeFiles/dauth_sim_cli.dir/dauth_sim.cpp.o"
  "CMakeFiles/dauth_sim_cli.dir/dauth_sim.cpp.o.d"
  "dauth-sim"
  "dauth-sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dauth_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
