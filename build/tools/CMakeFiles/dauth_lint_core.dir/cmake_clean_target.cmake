file(REMOVE_RECURSE
  "libdauth_lint_core.a"
)
