# Empty dependencies file for dauth_lint_core.
# This may be replaced when dependencies are built.
