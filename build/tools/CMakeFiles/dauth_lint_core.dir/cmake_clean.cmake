file(REMOVE_RECURSE
  "CMakeFiles/dauth_lint_core.dir/lint_core.cpp.o"
  "CMakeFiles/dauth_lint_core.dir/lint_core.cpp.o.d"
  "libdauth_lint_core.a"
  "libdauth_lint_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dauth_lint_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
