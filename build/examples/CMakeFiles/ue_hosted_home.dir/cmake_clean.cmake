file(REMOVE_RECURSE
  "CMakeFiles/ue_hosted_home.dir/ue_hosted_home.cpp.o"
  "CMakeFiles/ue_hosted_home.dir/ue_hosted_home.cpp.o.d"
  "ue_hosted_home"
  "ue_hosted_home.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ue_hosted_home.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
