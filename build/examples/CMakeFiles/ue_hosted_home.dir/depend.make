# Empty dependencies file for ue_hosted_home.
# This may be replaced when dependencies are built.
