
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/community_availability.cpp" "examples/CMakeFiles/community_availability.dir/community_availability.cpp.o" "gcc" "examples/CMakeFiles/community_availability.dir/community_availability.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dauth_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dauth_ran.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dauth_directory.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dauth_store.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dauth_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dauth_aka.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dauth_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dauth_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dauth_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dauth_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
