file(REMOVE_RECURSE
  "CMakeFiles/community_availability.dir/community_availability.cpp.o"
  "CMakeFiles/community_availability.dir/community_availability.cpp.o.d"
  "community_availability"
  "community_availability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/community_availability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
