# Empty dependencies file for community_availability.
# This may be replaced when dependencies are built.
