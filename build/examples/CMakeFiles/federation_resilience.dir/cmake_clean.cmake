file(REMOVE_RECURSE
  "CMakeFiles/federation_resilience.dir/federation_resilience.cpp.o"
  "CMakeFiles/federation_resilience.dir/federation_resilience.cpp.o.d"
  "federation_resilience"
  "federation_resilience.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/federation_resilience.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
