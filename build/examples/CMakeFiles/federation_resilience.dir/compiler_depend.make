# Empty compiler generated dependencies file for federation_resilience.
# This may be replaced when dependencies are built.
