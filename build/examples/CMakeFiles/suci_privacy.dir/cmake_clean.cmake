file(REMOVE_RECURSE
  "CMakeFiles/suci_privacy.dir/suci_privacy.cpp.o"
  "CMakeFiles/suci_privacy.dir/suci_privacy.cpp.o.d"
  "suci_privacy"
  "suci_privacy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/suci_privacy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
