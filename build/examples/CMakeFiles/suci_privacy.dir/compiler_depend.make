# Empty compiler generated dependencies file for suci_privacy.
# This may be replaced when dependencies are built.
