// Machine-readable bench output: every bench binary appends its result rows
// to a BenchReport and writes a BENCH_<name>.json file next to the text
// output, seeding the perf-trajectory tracking (docs/PERFORMANCE.md).
//
// The JSON record carries enough to compare runs across commits: the bench
// name, the commit the binary was configured from, thread count, total
// wall-clock, and one structured row per printed text row (series label,
// sweep coordinate, sample count, latency quantiles in milliseconds).
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "common/stats.h"

namespace dauth::bench {

/// One structured result row, mirroring one printed text row.
struct ReportRow {
  std::string series;              // e.g. "thresh[4]" or "dauth,edge-fiber"
  std::string kind = "quantiles";  // "quantiles" | "summary" | "box" | "scalar"
  double x = 0;                    // sweep coordinate (load/min, threshold, ...)
  std::size_t n = 0;               // sample count (0 for "scalar" rows)
  double p50 = 0, p90 = 0, p95 = 0, p99 = 0;
  double mean = 0, min = 0, max = 0;
  double value = 0;  // "scalar" rows: the single reported number
};

/// Builds a quantile/summary row from a sample set (values in ms).
ReportRow make_row(const std::string& series, double x, SampleSet& samples,
                   const std::string& kind = "quantiles");

/// Collects rows and writes BENCH_<name>.json. Wall-clock is measured from
/// construction to write().
class BenchReport {
 public:
  explicit BenchReport(std::string bench_name);

  void add(ReportRow row);
  void add_scalar(const std::string& series, double value);
  void set_threads(int threads) { threads_ = threads; }

  /// Attaches a MetricsRegistry::to_json() object; emitted verbatim as the
  /// record's "registry" member so counter/histogram summaries ride along
  /// with the quantile rows. Empty (the default) omits the member.
  void set_registry_json(std::string json) { registry_json_ = std::move(json); }

  /// Writes BENCH_<name>.json into $DAUTH_BENCH_OUT (or the current
  /// directory) and returns the path; returns "" on I/O failure.
  std::string write() const;

 private:
  std::string name_;
  std::string registry_json_;
  int threads_ = 1;
  double start_monotonic_;  // seconds, steady clock
  std::vector<ReportRow> rows_;
};

}  // namespace dauth::bench
