// Figure 7 / Figure 10 reproduction: authentication latency quantiles vs
// load for different numbers of configured backup networks ({2,4,6,8},
// key-share threshold 2, backup mode).
//
// Expected shape (§6.4 / Appendix E): tail latency degrades and the system
// saturates at lower load as the number of backups DEcreases — fewer nodes
// to spread vector fetches across, while the share fan-out hits every
// backup regardless. Figure 10 is the same data unclipped; we print raw
// values, so both views come from these rows.
//
// Each (backup-count, load) point is an independent, deterministically
// seeded simulation run on the sweep thread pool (see fig6 / harness.h).
#include <cstdio>

#include "harness.h"

using namespace dauth;

namespace {

const double kLoads[] = {100, 200, 400, 600, 800, 1000, 1200, 1400, 1600, 1800, 2000};
const std::size_t kBackupCounts[] = {2, 4, 6, 8};

bench::PointResult run_point(std::size_t backups, double load, std::uint64_t seed) {
  bench::DauthOptions options;
  options.scenario = sim::Scenario::kEdgeFiber;
  options.pool_size = 64;
  options.backup_count = backups;
  options.home_offline = true;
  options.config.threshold = 2;
  // Constant total vector budget per user regardless of backup count,
  // sized for a single point's measurement window.
  options.config.vectors_per_backup = 96 / backups;
  options.config.report_interval = 0;
  options.seed = seed;
  bench::DauthBench harness(options);

  auto result = harness.run_load(load, bench::duration_for(load));
  const std::string label = "backups[" + std::to_string(backups) + "]";
  bench::PointResult out;
  out.text = bench::format_quantiles(label, load, result.latencies);
  if (result.failed > 0) {
    char note[160];
    std::snprintf(note, sizeof note, "  note: %zu failures at %g/min (%s)\n",
                  result.failed, load,
                  result.failures.empty() ? "?" : result.failures.front().c_str());
    out.text += note;
  }
  out.rows.push_back(bench::make_row(label, load, result.latencies));
  return out;
}

}  // namespace

int main() {
  bench::print_title(
      "Figure 7/10: latency vs load across backup counts (threshold 2)");
  std::printf("rows: quant,backups[N],load_per_min,p50,p90,p95,p99 (ms)\n\n");

  std::vector<bench::SweepPoint> points;
  for (std::size_t bi = 0; bi < std::size(kBackupCounts); ++bi) {
    for (std::size_t li = 0; li < std::size(kLoads); ++li) {
      const std::size_t backups = kBackupCounts[bi];
      const double load = kLoads[li];
      const std::uint64_t seed = 7000 + 100 * bi + li;
      const bool group_end = li + 1 == std::size(kLoads);
      points.push_back({"backups=" + std::to_string(backups) + " load=" +
                            std::to_string(static_cast<int>(load)),
                        [=] {
                          auto r = run_point(backups, load, seed);
                          if (group_end) r.text += "\n";
                          return r;
                        }});
    }
  }

  bench::BenchReport report("fig7_backup_count_sweep");
  bench::run_sweep(points, &report);
  report.write();
  return 0;
}
