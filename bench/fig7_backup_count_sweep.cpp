// Figure 7 / Figure 10 reproduction: authentication latency quantiles vs
// load for different numbers of configured backup networks ({2,4,6,8},
// key-share threshold 2, backup mode).
//
// Expected shape (§6.4 / Appendix E): tail latency degrades and the system
// saturates at lower load as the number of backups DEcreases — fewer nodes
// to spread vector fetches across, while the share fan-out hits every
// backup regardless. Figure 10 is the same data unclipped; we print raw
// values, so both views come from these rows.
#include <cstdio>

#include "harness.h"

using namespace dauth;

namespace {

const double kLoads[] = {100, 200, 400, 600, 800, 1000, 1200, 1400, 1600, 1800, 2000};

Time duration_for(double per_minute) {
  const double minutes = std::min(3.0, std::max(0.75, 300.0 / per_minute));
  return static_cast<Time>(minutes * static_cast<double>(kMinute));
}

}  // namespace

int main() {
  bench::print_title(
      "Figure 7/10: latency vs load across backup counts (threshold 2)");
  std::printf("rows: quant,backups[N],load_per_min,p50,p90,p95,p99 (ms)\n\n");

  for (std::size_t backups : {2u, 4u, 6u, 8u}) {
    bench::DauthOptions options;
    options.scenario = sim::Scenario::kEdgeFiber;
    options.pool_size = 64;
    options.backup_count = backups;
    options.home_offline = true;
    options.config.threshold = 2;
    // Constant total vector budget per user regardless of backup count.
    options.config.vectors_per_backup = 320 / backups;
    options.config.report_interval = 0;
    bench::DauthBench harness(options);

    for (double load : kLoads) {
      auto result = harness.run_load(load, duration_for(load));
      bench::print_quantiles("backups[" + std::to_string(backups) + "]", load,
                             result.latencies);
      if (result.failed > 0) {
        std::printf("  note: %zu failures at %g/min (%s)\n", result.failed, load,
                    result.failures.empty() ? "?" : result.failures.front().c_str());
      }
    }
    std::printf("\n");
  }
  return 0;
}
