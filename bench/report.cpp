#include "report.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#ifndef DAUTH_BUILD_COMMIT
#define DAUTH_BUILD_COMMIT "unknown"
#endif

namespace dauth::bench {
namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Minimal JSON string escaping: our labels only contain printable ASCII,
/// but quotes/backslashes must not corrupt the record.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) continue;  // drop control chars
    out.push_back(c);
  }
  return out;
}

std::string json_number(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

}  // namespace

ReportRow make_row(const std::string& series, double x, SampleSet& samples,
                   const std::string& kind) {
  ReportRow row;
  row.series = series;
  row.kind = kind;
  row.x = x;
  row.n = samples.size();
  if (!samples.empty()) {
    row.p50 = samples.quantile(0.5);
    row.p90 = samples.quantile(0.9);
    row.p95 = samples.quantile(0.95);
    row.p99 = samples.quantile(0.99);
    row.mean = samples.mean();
    row.min = samples.min();
    row.max = samples.max();
  }
  return row;
}

BenchReport::BenchReport(std::string bench_name)
    : name_(std::move(bench_name)), start_monotonic_(now_seconds()) {}

void BenchReport::add(ReportRow row) { rows_.push_back(std::move(row)); }

void BenchReport::add_scalar(const std::string& series, double value) {
  ReportRow row;
  row.series = series;
  row.kind = "scalar";
  row.value = value;
  rows_.push_back(std::move(row));
}

std::string BenchReport::write() const {
  std::string dir = ".";
  if (const char* env = std::getenv("DAUTH_BENCH_OUT"); env && *env) dir = env;
  const std::string path = dir + "/BENCH_" + name_ + ".json";

  std::ofstream out(path);
  if (!out) return "";

  const double wall = now_seconds() - start_monotonic_;
  out << "{\n"
      << "  \"bench\": \"" << json_escape(name_) << "\",\n"
      << "  \"commit\": \"" << json_escape(DAUTH_BUILD_COMMIT) << "\",\n"
      << "  \"threads\": " << threads_ << ",\n"
      << "  \"wall_clock_seconds\": " << json_number(wall) << ",\n"
      << "  \"rows\": [\n";
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    const ReportRow& r = rows_[i];
    out << "    {\"series\": \"" << json_escape(r.series) << "\", \"kind\": \""
        << json_escape(r.kind) << "\"";
    if (r.kind == "scalar") {
      out << ", \"value\": " << json_number(r.value);
    } else {
      out << ", \"x\": " << json_number(r.x) << ", \"n\": " << r.n
          << ", \"p50\": " << json_number(r.p50) << ", \"p90\": " << json_number(r.p90)
          << ", \"p95\": " << json_number(r.p95) << ", \"p99\": " << json_number(r.p99)
          << ", \"mean\": " << json_number(r.mean) << ", \"min\": " << json_number(r.min)
          << ", \"max\": " << json_number(r.max);
    }
    out << "}" << (i + 1 < rows_.size() ? "," : "") << "\n";
  }
  out << "  ]";
  if (!registry_json_.empty()) {
    // Pre-serialized by MetricsRegistry::to_json(); emitted as-is.
    out << ",\n  \"registry\": " << registry_json_;
  }
  out << "\n}\n";
  out.close();
  std::fprintf(stderr, "wrote %s\n", path.c_str());
  return path;
}

}  // namespace dauth::bench
