// Extension bench (§7.4 future work): inter-organizational handover vs
// full re-authentication.
//
// The paper: "Allowing for performant and secure inter-organizational
// handover ... would make a large-scale dAuth system much more performant
// and suitable for more rapid mobility scenarios." This bench quantifies
// the gap our horizontal-key handover closes: a UE bounces between two
// federated edge serving networks, either by handover (context transfer +
// horizontal KDF) or by attaching from scratch each time (home-online and
// backup modes).
#include <cstdio>

#include "core/dauth_node.h"
#include "harness.h"
#include "ran/gnb.h"

using namespace dauth;

namespace {

constexpr int kMoves = 200;

struct MobilityWorld {
  sim::Simulator simulator{99};
  sim::Network network{simulator};
  sim::Rpc rpc{network};
  directory::DirectoryServer directory_server;
  sim::NodeIndex dir_node{};
  sim::NodeIndex ran_node{};
  std::vector<std::unique_ptr<core::DauthNode>> nets;  // 0=home, 1..2 serving, 3..6 backups
  aka::SubscriberKeys keys;
  const Supi supi{"315010000000001"};

  explicit MobilityWorld(bool home_offline) {
    auto cfg = sim::profile(sim::NodeClass::kCloud, "directory");
    dir_node = network.add_node(cfg);
    directory_server.bind(rpc, dir_node);

    core::FederationConfig config;
    config.threshold = 2;
    config.vectors_per_backup = 2 * kMoves + 8;
    config.report_interval = 0;

    const char* names[] = {"home-net", "serving-a", "serving-b", "backup-1",
                           "backup-2", "backup-3", "backup-4"};
    for (int i = 0; i < 7; ++i) {
      auto node_cfg = sim::profile(sim::NodeClass::kScnEdge, names[i]);
      const auto node = network.add_node(node_cfg);
      nets.push_back(std::make_unique<core::DauthNode>(
          rpc, node, NetworkId(names[i]), dir_node, directory_server, config, 10 + i));
    }
    ran_node = network.add_node(sim::profile(sim::NodeClass::kRanSite, "ran"));

    nets[0]->set_backups({nets[3]->id(), nets[4]->id(), nets[5]->id(), nets[6]->id()});
    keys = nets[0]->provision_subscriber(supi);
    nets[0]->home().disseminate(supi);
    simulator.run();

    if (home_offline) {
      network.node(nets[0]->node()).set_online(false);
      nets[1]->serving().set_home_health(nets[0]->id(), false);
      nets[2]->serving().set_home_health(nets[0]->id(), false);
    }
  }
};

SampleSet run_handover_chain(MobilityWorld& world) {
  auto profile = ran::emulated_ran_profile("5G:mnc010.mcc315.3gppnetwork.org");
  profile.use_guti = true;
  ran::Ue ue(world.rpc, world.ran_node, world.nets[1]->node(), world.supi, world.keys,
             profile);
  bool attached = false;
  ue.attach([&](const ran::AttachRecord& r) { attached = r.success; });
  world.simulator.run();
  SampleSet latencies;
  if (!attached) return latencies;

  for (int i = 0; i < kMoves; ++i) {
    const auto target = world.nets[1 + (i % 2 == 0 ? 1 : 0)]->node();
    bool done = false;
    ue.handover_to(target, [&](const ran::HandoverRecord& r) {
      done = true;
      if (r.success) latencies.add_time(r.latency());
    });
    world.simulator.run();
    if (!done) break;
  }
  return latencies;
}

SampleSet run_reattach_chain(MobilityWorld& world) {
  auto profile = ran::emulated_ran_profile("5G:mnc010.mcc315.3gppnetwork.org");
  ran::Ue ue(world.rpc, world.ran_node, world.nets[1]->node(), world.supi, world.keys,
             profile);
  SampleSet latencies;
  for (int i = 0; i < kMoves; ++i) {
    ue.move_to(world.nets[1 + (i % 2)]->node());
    bool done = false;
    ue.attach([&](const ran::AttachRecord& r) {
      done = true;
      if (r.success) latencies.add_time(r.latency());
    });
    world.simulator.run();
    if (!done) break;
  }
  return latencies;
}

}  // namespace

int main() {
  bench::print_title("Extension (§7.4): handover vs full re-authentication");
  std::printf("A UE bounces %d times between two federated edge serving networks.\n\n",
              kMoves);

  // Four independent worlds: run them concurrently on the sweep pool.
  struct Variant {
    std::string label;
    bool home_offline;
    bool handover;
  };
  const Variant variants[] = {
      {"re-attach per move (home online)", false, false},
      {"re-attach per move (backup mode)", true, false},
      {"handover per move (home online)", false, true},
      {"handover per move (home OFFLINE)", true, true},
  };

  std::vector<bench::SweepPoint> points;
  for (const Variant& v : variants) {
    points.push_back({v.label, [v] {
                        MobilityWorld world(v.home_offline);
                        auto samples = v.handover ? run_handover_chain(world)
                                                  : run_reattach_chain(world);
                        bench::PointResult out;
                        out.text = bench::format_summary(v.label, samples);
                        out.rows.push_back(bench::make_row(v.label, 0, samples, "summary"));
                        return out;
                      }});
  }
  bench::BenchReport report("ext_handover");
  bench::run_sweep(points, &report);
  report.write();

  std::printf(
      "\nHandover needs one context-transfer RPC between the serving networks\n"
      "plus one UE round trip — no AKA, no home network, no key shares — and\n"
      "inherits dAuth's resilience: it works identically during home outages.\n");
  return 0;
}
