// Figure 6 reproduction: authentication latency quantiles vs load for
// key-share thresholds {2, 4, 6, 8} with 8 backup networks (backup mode,
// edge serving core on fiber).
//
// Expected shape (§6.4): under load the threshold has NO consistent impact
// on latency or throughput — all backups are queried concurrently anyway,
// and at high load server-side queueing (shared across thresholds)
// dominates over waiting for the M-th share.
//
// Every (threshold, load) point is an independent simulation with its own
// deterministic seed, so the sweep fans out across DAUTH_BENCH_THREADS
// workers; rows are emitted in sweep order and are byte-identical for any
// thread count. DAUTH_BENCH_SMOKE=1 shrinks the sweep to a seconds-long
// sanitizer-friendly pass (tools/check.sh).
#include <cstdio>
#include <cstdlib>

#include "harness.h"

using namespace dauth;

namespace {

const double kLoads[] = {100, 200, 400, 600, 800, 1000, 1200, 1400, 1600, 1800, 2000};
const std::size_t kThresholds[] = {2, 4, 6, 8};

const double kSmokeLoads[] = {200, 800};
const std::size_t kSmokeThresholds[] = {2, 4};

bench::PointResult run_point(std::size_t threshold, double load, std::uint64_t seed,
                             Time duration) {
  bench::DauthOptions options;
  options.scenario = sim::Scenario::kEdgeFiber;
  options.pool_size = 64;
  options.backup_count = 8;
  options.home_offline = true;
  options.config.threshold = threshold;
  options.config.vectors_per_backup = 12;  // enough for one point's window
  options.config.report_interval = 0;
  options.seed = seed;
  bench::DauthBench harness(options);

  auto result = harness.run_load(load, duration);
  const std::string label = "thresh[" + std::to_string(threshold) + "]";
  bench::PointResult out;
  out.text = bench::format_quantiles(label, load, result.latencies);
  if (result.failed > 0) {
    char note[160];
    std::snprintf(note, sizeof note, "  note: %zu failures at %g/min (%s)\n",
                  result.failed, load,
                  result.failures.empty() ? "?" : result.failures.front().c_str());
    out.text += note;
  }
  out.rows.push_back(bench::make_row(label, load, result.latencies));
  return out;
}

}  // namespace

int main() {
  const bool smoke = std::getenv("DAUTH_BENCH_SMOKE") != nullptr;
  bench::print_title("Figure 6: latency vs load across key-share thresholds (8 backups)");
  std::printf("rows: quant,thresh[M],load_per_min,p50,p90,p95,p99 (ms)\n\n");

  std::vector<std::size_t> thresholds(std::begin(kThresholds), std::end(kThresholds));
  std::vector<double> loads(std::begin(kLoads), std::end(kLoads));
  if (smoke) {
    thresholds.assign(std::begin(kSmokeThresholds), std::end(kSmokeThresholds));
    loads.assign(std::begin(kSmokeLoads), std::end(kSmokeLoads));
  }

  std::vector<bench::SweepPoint> points;
  for (std::size_t ti = 0; ti < thresholds.size(); ++ti) {
    for (std::size_t li = 0; li < loads.size(); ++li) {
      const std::size_t threshold = thresholds[ti];
      const double load = loads[li];
      // Deterministic per-point seed: stable across runs and thread counts.
      const std::uint64_t seed = 42 + 100 * ti + li;
      const Time duration = smoke ? sec(20) : bench::duration_for(load);
      const bool group_end = li + 1 == loads.size();  // blank line between groups
      points.push_back({"thresh=" + std::to_string(threshold) + " load=" +
                            std::to_string(static_cast<int>(load)),
                        [=] {
                          auto r = run_point(threshold, load, seed, duration);
                          if (group_end) r.text += "\n";
                          return r;
                        }});
    }
  }

  bench::BenchReport report(smoke ? "fig6_threshold_sweep_smoke" : "fig6_threshold_sweep");
  bench::run_sweep(points, &report);
  report.write();
  return 0;
}
