// Figure 6 reproduction: authentication latency quantiles vs load for
// key-share thresholds {2, 4, 6, 8} with 8 backup networks (backup mode,
// edge serving core on fiber).
//
// Expected shape (§6.4): under load the threshold has NO consistent impact
// on latency or throughput — all backups are queried concurrently anyway,
// and at high load server-side queueing (shared across thresholds)
// dominates over waiting for the M-th share.
#include <cstdio>

#include "harness.h"

using namespace dauth;

namespace {

const double kLoads[] = {100, 200, 400, 600, 800, 1000, 1200, 1400, 1600, 1800, 2000};

Time duration_for(double per_minute) {
  const double minutes = std::min(3.0, std::max(0.75, 300.0 / per_minute));
  return static_cast<Time>(minutes * static_cast<double>(kMinute));
}

}  // namespace

int main() {
  bench::print_title("Figure 6: latency vs load across key-share thresholds (8 backups)");
  std::printf("rows: quant,thresh[M],load_per_min,p50,p90,p95,p99 (ms)\n\n");

  for (std::size_t threshold : {2u, 4u, 6u, 8u}) {
    bench::DauthOptions options;
    options.scenario = sim::Scenario::kEdgeFiber;
    options.pool_size = 64;
    options.backup_count = 8;
    options.home_offline = true;
    options.config.threshold = threshold;
    options.config.vectors_per_backup = 40;  // enough for the whole sweep
    options.config.report_interval = 0;
    bench::DauthBench harness(options);

    for (double load : kLoads) {
      auto result = harness.run_load(load, duration_for(load));
      bench::print_quantiles("thresh[" + std::to_string(threshold) + "]", load,
                             result.latencies);
      if (result.failed > 0) {
        std::printf("  note: %zu failures at %g/min (%s)\n", result.failed, load,
                    result.failures.empty() ? "?" : result.failures.front().c_str());
      }
    }
    std::printf("\n");
  }
  return 0;
}
