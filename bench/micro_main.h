// Shared main() body for the google-benchmark micro binaries: runs the
// registered benchmarks with the normal console output, captures every
// per-iteration timing, and writes a BENCH_<name>.json perf-trajectory
// record (docs/PERFORMANCE.md). Optional per-benchmark baselines (ns/op
// from a prior commit) are emitted alongside as "<name>:baseline_ns" and
// "<name>:speedup" scalar rows so the record is self-describing.
#pragma once

#include <benchmark/benchmark.h>

#include <map>
#include <string>
#include <vector>

#include "report.h"

namespace dauth::bench {

/// ConsoleReporter that also captures (name, ns/op) for the JSON record.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  struct Timing {
    std::string name;
    double real_ns;
    double cpu_ns;
  };

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      const double iters = run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      timings_.push_back({run.benchmark_name(),
                          run.real_accumulated_time / iters * 1e9,
                          run.cpu_accumulated_time / iters * 1e9});
    }
    ConsoleReporter::ReportRuns(runs);
  }

  const std::vector<Timing>& timings() const noexcept { return timings_; }

 private:
  std::vector<Timing> timings_;
};

/// Runs the benchmarks and writes BENCH_<bench_name>.json. `baseline_ns`
/// maps benchmark names to pre-optimization ns/op for speedup rows.
inline int run_micro_benchmarks(int argc, char** argv, const std::string& bench_name,
                                const std::map<std::string, double>& baseline_ns = {}) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;

  BenchReport report(bench_name);
  CapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);

  for (const auto& t : reporter.timings()) {
    report.add_scalar(t.name + ":real_ns", t.real_ns);
    report.add_scalar(t.name + ":cpu_ns", t.cpu_ns);
    const auto it = baseline_ns.find(t.name);
    if (it != baseline_ns.end() && t.real_ns > 0) {
      report.add_scalar(t.name + ":baseline_ns", it->second);
      report.add_scalar(t.name + ":speedup", it->second / t.real_ns);
    }
  }
  report.write();
  benchmark::Shutdown();
  return 0;
}

}  // namespace dauth::bench
