// Shared bench harness: builds the paper's evaluation scenarios on the
// Appendix C testbed and drives load against dAuth or the Open5GS baseline.
//
// Placement per §6.3.1 scenario:
//   * RAN site: uni-lab (fiber) or home-A (residential cable);
//   * serving core: an "edge PC" added at the RAN site (sub-ms link), or a
//     "cloud host" node ~5ms RTT from the RAN site;
//   * dAuth home network: a nearby SCN edge PC on fiber;
//   * Open5GS roaming home HSS: a cloud node ~5ms RTT away (§6.3.2).
//
// Concurrency calibration: the Open5GS AMF/AUSF path is a single-threaded
// event loop, so baseline core nodes run with one worker; dAuth daemons
// (async Tonic runtime in the paper's prototype) use the node's full worker
// pool. This is what produces the load-sharing crossover of Figures 4/5.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include <functional>

#include "baseline/standalone_core.h"
#include "core/dauth_node.h"
#include "ran/gnb.h"
#include "ran/load_generator.h"
#include "report.h"
#include "sim/topology.h"

namespace dauth::obs {
class EventJournal;
class MetricsRegistry;
class Tracer;
}  // namespace dauth::obs

namespace dauth::bench {

/// Which nodes may serve as backup networks.
enum class BackupPool {
  kAllCoreNodes,  // Fig. 5-7: random among all 10 core nodes
  kNonCloud,      // Fig. 3: the 6 SCN/uni/residential nodes (incl. slow Atom)
};

struct DauthOptions {
  sim::Scenario scenario = sim::Scenario::kEdgeFiber;
  core::FederationConfig config;
  std::size_t backup_count = 8;
  BackupPool backup_pool = BackupPool::kAllCoreNodes;
  std::size_t pool_size = 128;       // provisioned subscribers / UEs
  bool home_offline = false;         // backup-mode experiments
  bool home_is_serving = false;      // Fig. 3 "dAuth-home-online" (local)
  bool physical_ran = false;         // srsUE profile instead of UERANSIM
  bool connection_reuse = true;      // §5.1 optimization 1 (ablation toggle)
  // Announced backup outages (resilience benches, docs/RESILIENCE.md): the
  // first `backup_outages` backup networks go down `outage_start` after
  // dissemination for `outage_duration`. The FailureInjector's liveness feed
  // force-opens circuits toward them, so the resilience layer (when enabled)
  // skips them instantly; with resilience disabled the load pays the
  // discovery timeouts.
  std::size_t backup_outages = 0;
  Time outage_start = 0;
  Time outage_duration = 0;
  // Full observability stack (src/obs/): tracer on the RPC layer plus a
  // metrics registry and event journal on every node, installed after
  // dissemination so the record covers only measured traffic. Off by
  // default — the disabled path is a single null-pointer test per call
  // site, so benches without --trace measure the same code they always did.
  bool trace = false;
  std::uint64_t seed = 42;
};

/// A complete dAuth federation bench scenario.
class DauthBench {
 public:
  explicit DauthBench(const DauthOptions& options);
  ~DauthBench();

  /// Open-loop load (Fig. 4-7).
  ran::LoadResult run_load(double per_minute, Time duration);

  /// One sequential attach with the single srsUE-style UE (Fig. 3).
  ran::AttachRecord single_attach();

  const core::ServingMetrics& serving_metrics() const;
  sim::Simulator& simulator();

  /// Observability handles; null unless DauthOptions::trace was set.
  obs::Tracer* tracer();
  obs::MetricsRegistry* metrics_registry();
  obs::EventJournal* journal();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

struct BaselineOptions {
  sim::Scenario scenario = sim::Scenario::kEdgeFiber;
  bool roaming = false;  // true: subscribers homed at a ~5ms-RTT cloud HSS
  baseline::StandaloneCoreConfig core_config;
  std::size_t pool_size = 128;
  bool physical_ran = false;
  std::uint64_t seed = 42;
};

/// The Open5GS-like comparison system on the same topology.
class BaselineBench {
 public:
  explicit BaselineBench(const BaselineOptions& options);
  ~BaselineBench();

  ran::LoadResult run_load(double per_minute, Time duration);
  ran::AttachRecord single_attach();
  sim::Simulator& simulator();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// ---- Sweep scheduling -------------------------------------------------------

/// Standard per-point measurement window: run long enough at low load to
/// collect ~`target_arrivals` samples, clamped to [min_minutes, max_minutes]
/// so low-load points don't run for hours and high-load points still reach
/// queueing steady state. Hoisted from the per-figure copies: the 11-point
/// sweeps (Fig. 6/7) use the defaults, the 3-load comparisons (Fig. 4/5)
/// pass a wider clamp.
Time duration_for(double per_minute, double target_arrivals = 300.0,
                  double min_minutes = 0.75, double max_minutes = 3.0);

/// What one sweep point hands back: text printed verbatim (in submission
/// order) plus structured rows for the BENCH_<name>.json record.
struct PointResult {
  std::string text;
  std::vector<ReportRow> rows;
};

/// One independently runnable sweep point. `run` must be self-contained: it
/// builds its own bench world from a deterministic per-point seed and MUST
/// NOT touch state shared with other points, because points execute on any
/// worker thread in any order. Output stays byte-identical for any thread
/// count since emission follows the submission order, not completion order.
struct SweepPoint {
  std::string name;  // progress label (stderr only)
  std::function<PointResult()> run;
};

/// Number of worker threads a sweep will use: $DAUTH_BENCH_THREADS if set,
/// else the hardware concurrency (at least 1).
int sweep_threads();

/// Runs every point on `threads` workers (0 = sweep_threads()) and returns
/// the results in submission order. A throwing point yields a PointResult
/// whose text carries the error; it never takes down the sweep.
std::vector<PointResult> run_sweep_collect(const std::vector<SweepPoint>& points,
                                           int threads = 0);

/// run_sweep_collect + prints each result's text to stdout in order and,
/// when `report` is non-null, appends each result's rows in order.
void run_sweep(const std::vector<SweepPoint>& points, BenchReport* report,
               int threads = 0);

// ---- Output helpers ---------------------------------------------------------
//
// Each print_* helper has a format_* twin returning the same bytes as a
// string, so sweep points can defer emission to the ordered printer.

/// Prints "# <title>" and a separator.
void print_title(const std::string& title);

/// "<label>  n=... p50=... ..." summary line.
std::string format_summary(const std::string& label, SampleSet& samples);
void print_summary(const std::string& label, SampleSet& samples);

/// Empirical CDF as "cdf,<label>,<ms>,<fraction>" rows.
std::string format_cdf(const std::string& label, SampleSet& samples,
                       std::size_t points = 20);
void print_cdf(const std::string& label, SampleSet& samples, std::size_t points = 20);

/// Boxplot stats: "box,<label>,min,q1,median,q3,p95,max".
std::string format_boxplot(const std::string& label, SampleSet& samples);
void print_boxplot(const std::string& label, SampleSet& samples);

/// Quantile row "quant,<label>,<load>,p50,p90,p95,p99".
std::string format_quantiles(const std::string& label, double load_per_minute,
                             SampleSet& samples);
void print_quantiles(const std::string& label, double load_per_minute, SampleSet& samples);

}  // namespace dauth::bench
