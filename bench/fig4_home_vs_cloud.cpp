// Figure 4 reproduction: attach latency of dAuth (home network online,
// nearby) vs a standalone Open5GS core, across the four deployment
// scenarios of §6.3.1 and three load levels (20 / 200 / 1000
// registrations per minute).
//
// Expected shape: at low load dAuth's extra inter-core round trip makes it
// slightly slower than the standalone core; at 1000/min the standalone
// core's single-box auth pipeline saturates while dAuth spreads NAS
// handling (serving) and vector generation (home) across machines — the
// lines cross. Edge placements beat cloud placements throughout.
//
// Each (load, scenario, system) point is an independent, deterministically
// seeded simulation run on the sweep thread pool (harness.h).
#include <cstdio>

#include "harness.h"

using namespace dauth;

namespace {

constexpr double kLoads[] = {20, 200, 1000};

Time fig4_duration(double load) {
  // Aim for a few hundred samples per point without burning hours at 20/min.
  return bench::duration_for(load, 240.0, 1.5, 10.0);
}

bench::PointResult run_dauth_point(sim::Scenario scenario, double load,
                                   std::uint64_t seed) {
  bench::DauthOptions options;
  options.scenario = scenario;
  options.pool_size = 64;
  options.backup_count = 8;
  options.config.vectors_per_backup = 2;  // unused (home stays online)
  options.seed = seed;
  bench::DauthBench harness(options);
  auto result = harness.run_load(load, fig4_duration(load));

  const std::string label = std::string("dauth,") + sim::to_string(scenario);
  bench::PointResult out;
  out.text = bench::format_summary(label, result.latencies);
  out.text += bench::format_cdf(label + "," + std::to_string(static_cast<int>(load)),
                                result.latencies, 12);
  if (result.failed > 0) {
    char note[160];
    std::snprintf(note, sizeof note, "  failures=%zu (%s)\n", result.failed,
                  result.failures.empty() ? "?" : result.failures.front().c_str());
    out.text += note;
  }
  out.rows.push_back(bench::make_row(label, load, result.latencies, "summary"));
  return out;
}

bench::PointResult run_baseline_point(sim::Scenario scenario, double load,
                                      std::uint64_t seed) {
  bench::BaselineOptions options;
  options.scenario = scenario;
  options.pool_size = 64;
  options.seed = seed;
  bench::BaselineBench harness(options);
  auto result = harness.run_load(load, fig4_duration(load));

  const std::string label = std::string("open5gs,") + sim::to_string(scenario);
  bench::PointResult out;
  out.text = bench::format_summary(label, result.latencies);
  out.text += bench::format_cdf(label + "," + std::to_string(static_cast<int>(load)),
                                result.latencies, 12);
  if (result.failed > 0) {
    out.text += "  failures=" + std::to_string(result.failed) + "\n";
  }
  out.rows.push_back(bench::make_row(label, load, result.latencies, "summary"));
  return out;
}

}  // namespace

int main() {
  bench::print_title("Figure 4: dAuth (home online) vs standalone Open5GS");

  const sim::Scenario scenarios[] = {
      sim::Scenario::kEdgeFiber, sim::Scenario::kEdgeResidential,
      sim::Scenario::kCloudFiber, sim::Scenario::kCloudResidential};

  std::vector<bench::SweepPoint> points;
  for (std::size_t li = 0; li < std::size(kLoads); ++li) {
    const double load = kLoads[li];
    // Per-load header rides on the first point of the load group.
    bool first_in_group = true;
    for (std::size_t si = 0; si < std::size(scenarios); ++si) {
      const sim::Scenario scenario = scenarios[si];
      const std::uint64_t seed = 4000 + 100 * li + 10 * si;
      const std::string header =
          first_in_group ? "\n== " + std::to_string(static_cast<int>(load)) +
                               " registrations per minute ==\n"
                         : "";
      first_in_group = false;
      points.push_back({std::string("dauth ") + sim::to_string(scenario) + " load=" +
                            std::to_string(static_cast<int>(load)),
                        [=] {
                          auto r = run_dauth_point(scenario, load, seed);
                          r.text = header + r.text;
                          return r;
                        }});
      points.push_back({std::string("open5gs ") + sim::to_string(scenario) + " load=" +
                            std::to_string(static_cast<int>(load)),
                        [=] { return run_baseline_point(scenario, load, seed + 5); }});
    }
  }

  bench::BenchReport report("fig4_home_vs_cloud");
  bench::run_sweep(points, &report);
  report.write();
  return 0;
}
