// Figure 4 reproduction: attach latency of dAuth (home network online,
// nearby) vs a standalone Open5GS core, across the four deployment
// scenarios of §6.3.1 and three load levels (20 / 200 / 1000
// registrations per minute).
//
// Expected shape: at low load dAuth's extra inter-core round trip makes it
// slightly slower than the standalone core; at 1000/min the standalone
// core's single-box auth pipeline saturates while dAuth spreads NAS
// handling (serving) and vector generation (home) across machines — the
// lines cross. Edge placements beat cloud placements throughout.
#include <cstdio>

#include "harness.h"

using namespace dauth;

namespace {

constexpr double kLoads[] = {20, 200, 1000};

Time duration_for(double per_minute) {
  // Aim for a few hundred samples per point without burning hours at 20/min.
  const double minutes = std::min(10.0, std::max(1.5, 240.0 / per_minute * 60.0 / 60.0));
  return static_cast<Time>(minutes * static_cast<double>(kMinute));
}

}  // namespace

int main() {
  bench::print_title("Figure 4: dAuth (home online) vs standalone Open5GS");

  const sim::Scenario scenarios[] = {
      sim::Scenario::kEdgeFiber, sim::Scenario::kEdgeResidential,
      sim::Scenario::kCloudFiber, sim::Scenario::kCloudResidential};

  for (double load : kLoads) {
    std::printf("\n== %g registrations per minute ==\n", load);
    for (sim::Scenario scenario : scenarios) {
      {  // dAuth, home online.
        bench::DauthOptions options;
        options.scenario = scenario;
        options.pool_size = 64;
        options.backup_count = 8;
        options.config.vectors_per_backup = 2;  // unused (home stays online)
        bench::DauthBench harness(options);
        auto result = harness.run_load(load, duration_for(load));
        const std::string label =
            std::string("dauth,") + sim::to_string(scenario);
        bench::print_summary(label, result.latencies);
        bench::print_cdf(label + "," + std::to_string(static_cast<int>(load)),
                         result.latencies, 12);
        if (result.failed > 0) {
          std::printf("  failures=%zu (%s)\n", result.failed,
                      result.failures.empty() ? "?" : result.failures.front().c_str());
        }
      }
      {  // Standalone Open5GS.
        bench::BaselineOptions options;
        options.scenario = scenario;
        options.pool_size = 64;
        bench::BaselineBench harness(options);
        auto result = harness.run_load(load, duration_for(load));
        const std::string label =
            std::string("open5gs,") + sim::to_string(scenario);
        bench::print_summary(label, result.latencies);
        bench::print_cdf(label + "," + std::to_string(static_cast<int>(load)),
                         result.latencies, 12);
        if (result.failed > 0) std::printf("  failures=%zu\n", result.failed);
      }
    }
  }
  return 0;
}
