// Microbenchmarks for the cryptographic primitives underlying dAuth.
//
// These quantify the per-operation costs referenced by the CostModel
// calibration: Milenage vector generation, Ed25519 bundle signing and
// verification, Shamir splitting/combination, and the Feldman VSS
// extension's overhead (§3.5.2).
#include <benchmark/benchmark.h>

#include "micro_main.h"

#include "crypto/aes128.h"
#include "crypto/drbg.h"
#include "crypto/ed25519.h"
#include "crypto/feldman.h"
#include "crypto/hmac.h"
#include "crypto/kdf_3gpp.h"
#include "crypto/milenage.h"
#include "crypto/sha256.h"
#include "crypto/sha512.h"
#include "crypto/shamir.h"
#include "crypto/x25519.h"

namespace dauth::crypto {
namespace {

void BM_Sha256_1KiB(benchmark::State& state) {
  DeterministicDrbg rng("bench", 1);
  const Bytes data = rng.bytes(1024);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sha256(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_Sha256_1KiB);

void BM_Sha512_1KiB(benchmark::State& state) {
  DeterministicDrbg rng("bench", 2);
  const Bytes data = rng.bytes(1024);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sha512(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_Sha512_1KiB);

void BM_HmacSha256(benchmark::State& state) {
  DeterministicDrbg rng("bench", 3);
  const Bytes key = rng.bytes(32);
  const Bytes data = rng.bytes(256);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hmac_sha256(key, data));
  }
}
BENCHMARK(BM_HmacSha256);

void BM_Aes128Block(benchmark::State& state) {
  DeterministicDrbg rng("bench", 4);
  const Aes128 cipher(rng.array<16>());
  AesBlock block = rng.array<16>();
  for (auto _ : state) {
    block = cipher.encrypt_block(block);
    benchmark::DoNotOptimize(block);
  }
}
BENCHMARK(BM_Aes128Block);

void BM_MilenageFullVector(benchmark::State& state) {
  DeterministicDrbg rng("bench", 5);
  const MilenageKey k = rng.array<16>();
  const MilenageOpc opc = derive_opc(k, rng.array<16>());
  const Rand rand = rng.array<16>();
  const Sqn sqn = rng.array<6>();
  const Amf amf = {0x80, 0x00};
  for (auto _ : state) {
    benchmark::DoNotOptimize(milenage(k, opc, rand, sqn, amf));
  }
}
BENCHMARK(BM_MilenageFullVector);

void BM_Kdf5gKeyHierarchy(benchmark::State& state) {
  DeterministicDrbg rng("bench", 6);
  const Ck ck = rng.array<16>();
  const Ik ik = rng.array<16>();
  const ByteArray<6> sqn_ak = rng.array<6>();
  const std::string snn = serving_network_name("315", "010");
  for (auto _ : state) {
    const Key256 k_ausf = derive_k_ausf(ck, ik, snn, sqn_ak);
    const Key256 k_seaf = derive_k_seaf(k_ausf, snn);
    benchmark::DoNotOptimize(derive_k_amf(k_seaf, "315010000000001", {0, 0}));
  }
}
BENCHMARK(BM_Kdf5gKeyHierarchy);

void BM_Ed25519Sign(benchmark::State& state) {
  DeterministicDrbg rng("bench", 7);
  const auto kp = ed25519_generate(rng);
  const Bytes msg = rng.bytes(256);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ed25519_sign(msg, kp));
  }
}
BENCHMARK(BM_Ed25519Sign);

void BM_Ed25519Verify(benchmark::State& state) {
  DeterministicDrbg rng("bench", 8);
  const auto kp = ed25519_generate(rng);
  const Bytes msg = rng.bytes(256);
  const auto sig = ed25519_sign(msg, kp);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ed25519_verify(msg, sig, kp.public_key));
  }
}
BENCHMARK(BM_Ed25519Verify);

void BM_X25519SharedSecret(benchmark::State& state) {
  DeterministicDrbg rng("bench", 9);
  const auto a = x25519_generate(rng);
  const auto b = x25519_generate(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(x25519(a.secret, b.public_key));
  }
}
BENCHMARK(BM_X25519SharedSecret);

void BM_ShamirSplit(benchmark::State& state) {
  DeterministicDrbg rng("bench", 10);
  const Bytes secret = rng.bytes(32);
  const auto threshold = static_cast<std::size_t>(state.range(0));
  const auto count = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(shamir_split(secret, threshold, count, rng));
  }
}
BENCHMARK(BM_ShamirSplit)->Args({2, 8})->Args({4, 8})->Args({8, 8})->Args({16, 31});

void BM_ShamirCombine(benchmark::State& state) {
  DeterministicDrbg rng("bench", 11);
  const Bytes secret = rng.bytes(32);
  const auto threshold = static_cast<std::size_t>(state.range(0));
  const auto shares = shamir_split(secret, threshold, static_cast<std::size_t>(state.range(1)), rng);
  const std::vector<ShamirShare> subset(shares.begin(), shares.begin() + threshold);
  for (auto _ : state) {
    benchmark::DoNotOptimize(shamir_combine(subset));
  }
}
BENCHMARK(BM_ShamirCombine)->Args({2, 8})->Args({4, 8})->Args({8, 8});

void BM_FeldmanSplit(benchmark::State& state) {
  DeterministicDrbg rng("bench", 12);
  const Bytes secret = rng.bytes(32);
  const auto threshold = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(feldman_split(secret, threshold, 8, rng));
  }
}
BENCHMARK(BM_FeldmanSplit)->Arg(2)->Arg(4);

void BM_FeldmanVerifyShare(benchmark::State& state) {
  DeterministicDrbg rng("bench", 13);
  const Bytes secret = rng.bytes(32);
  const auto sharing = feldman_split(secret, static_cast<std::size_t>(state.range(0)), 8, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(feldman_verify(sharing.shares[0], sharing.commitments));
  }
}
BENCHMARK(BM_FeldmanVerifyShare)->Arg(2)->Arg(4);

}  // namespace
}  // namespace dauth::crypto

int main(int argc, char** argv) {
  // ns/op measured at the pre-optimization commit (ladder verify, linear
  // base-table sign, per-byte SHA buffering) on the reference runner; the
  // JSON record carries these so each run self-reports its speedups.
  const std::map<std::string, double> baselines = {
      {"BM_Ed25519Verify", 128841.0},
      {"BM_Ed25519Sign", 34732.0},
      {"BM_Sha256_1KiB", 5280.0},
      {"BM_Sha512_1KiB", 3918.0},
  };
  return dauth::bench::run_micro_benchmarks(argc, argv, "micro_crypto", baselines);
}
