// Figure 5 variant: dAuth backup-mode authentication under an injected
// single-backup outage, with the resilience substrate (docs/RESILIENCE.md)
// enabled vs disabled. Same edge-fiber placement, pool and load levels as
// the Fig. 5 backup points; the only differences are the announced outage
// on one of the eight backups and the policy toggle.
//
// Both arms run with vector_race_width=1 so the ablation isolates the
// resilience layer itself: hedged fan-out replaces the pre-existing
// vector race (which would mask a dead backup by always burning a second
// vector), and the breaker feed replaces nothing — the legacy path has no
// liveness input at all. With the policy disabled, every attach whose
// shuffled ladder starts at the dead backup burns the full
// backup_auth_timeout and fails; with it enabled, the force-opened breaker
// sorts the dead backup to the back and hedging covers silent stragglers,
// so the outage is invisible to the UE.
//
// Each (load, arm) pair shares one deterministic seed: identical worlds,
// identical arrival processes, policy toggle only. The comparison rows at
// the end of each point carry the headline result (success-rate delta and
// all-attempt p99 ratio) for the perf trajectory.
#include <cstdio>

#include "core/metrics.h"
#include "harness.h"

using namespace dauth;

namespace {

constexpr double kLoads[] = {20, 200, 1000};

Time fig5_duration(double load) { return bench::duration_for(load, 240.0, 1.5, 10.0); }

struct ArmOutcome {
  ran::LoadResult load;
  core::ServingMetrics metrics;
};

ArmOutcome run_arm(double load, bool resilient, std::uint64_t seed) {
  bench::DauthOptions options;
  options.scenario = sim::Scenario::kEdgeFiber;
  options.pool_size = 64;
  options.backup_count = 8;
  options.home_offline = true;
  options.config.threshold = 4;
  options.config.vectors_per_backup = 10;
  options.config.report_interval = 0;  // home stays down
  options.config.vector_race_width = 1;
  options.config.resilience.enabled = resilient;
  options.backup_outages = 1;
  options.outage_start = 0;
  options.outage_duration = hours(12);  // outlasts any measurement window
  options.seed = seed;
  bench::DauthBench harness(options);
  ArmOutcome out;
  out.load = harness.run_load(load, fig5_duration(load));
  out.metrics = harness.serving_metrics();
  return out;
}

bench::ReportRow scalar_row(const std::string& series, double value) {
  bench::ReportRow row;
  row.series = series;
  row.kind = "scalar";
  row.value = value;
  return row;
}

double success_rate(const ran::LoadResult& r) {
  return r.attempted == 0 ? 0.0
                          : static_cast<double>(r.succeeded) /
                                static_cast<double>(r.attempted);
}

bench::PointResult run_outage_point(double load, std::uint64_t seed) {
  auto on = run_arm(load, /*resilient=*/true, seed);
  auto off = run_arm(load, /*resilient=*/false, seed);

  const std::string suffix = ",edge-fiber,load=" + std::to_string(static_cast<int>(load));
  const std::string on_label = "outage-resilient" + suffix;
  const std::string off_label = "outage-ablated" + suffix;

  bench::PointResult out;
  char line[256];
  std::snprintf(line, sizeof line, "\n== %d registrations per minute, 1 of 8 backups down ==\n",
                static_cast<int>(load));
  out.text = line;
  out.text += bench::format_summary(on_label, on.load.attempt_latencies);
  out.text += bench::format_summary(off_label, off.load.attempt_latencies);
  std::snprintf(line, sizeof line,
                "  success: resilient %zu/%zu (%.1f%%)  ablated %zu/%zu (%.1f%%)\n",
                on.load.succeeded, on.load.attempted, 100.0 * success_rate(on.load),
                off.load.succeeded, off.load.attempted, 100.0 * success_rate(off.load));
  out.text += line;
  std::snprintf(line, sizeof line,
                "  resilient counters: retries=%llu hedges=%llu hedge_wins=%llu "
                "breaker_opens=%llu breaker_skips=%llu fast_failures=%llu\n",
                static_cast<unsigned long long>(on.metrics.retries),
                static_cast<unsigned long long>(on.metrics.hedges_launched),
                static_cast<unsigned long long>(on.metrics.hedge_wins),
                static_cast<unsigned long long>(on.metrics.breaker_opens),
                static_cast<unsigned long long>(on.metrics.breaker_skips),
                static_cast<unsigned long long>(on.metrics.fast_failures));
  out.text += line;

  // Successful-attach latencies (comparable to the plain Fig. 5 rows) and
  // all-attempt latencies (failures included, where the outage tail lives).
  out.rows.push_back(bench::make_row(on_label, load, on.load.latencies, "summary"));
  out.rows.push_back(bench::make_row(off_label, load, off.load.latencies, "summary"));
  out.rows.push_back(
      bench::make_row(on_label + ",attempts", load, on.load.attempt_latencies, "quantiles"));
  out.rows.push_back(
      bench::make_row(off_label + ",attempts", load, off.load.attempt_latencies, "quantiles"));

  out.rows.push_back(scalar_row(on_label + ":success_rate", success_rate(on.load)));
  out.rows.push_back(scalar_row(off_label + ":success_rate", success_rate(off.load)));
  for (const auto& [name, value] :
       {std::pair<const char*, std::uint64_t>{"retries", on.metrics.retries},
        {"hedges_launched", on.metrics.hedges_launched},
        {"hedge_wins", on.metrics.hedge_wins},
        {"breaker_opens", on.metrics.breaker_opens},
        {"breaker_skips", on.metrics.breaker_skips},
        {"fast_failures", on.metrics.fast_failures}}) {
    out.rows.push_back(
        scalar_row(on_label + ":" + name, static_cast<double>(value)));
  }

  // Headline comparison rows: positive delta / ratio > 1 means the
  // resilience layer wins under the outage.
  const double on_p99 = on.load.attempt_latencies.quantile(0.99);
  const double off_p99 = off.load.attempt_latencies.quantile(0.99);
  out.rows.push_back(scalar_row("outage-comparison" + suffix + ":success_rate_delta",
                                success_rate(on.load) - success_rate(off.load)));
  out.rows.push_back(scalar_row("outage-comparison" + suffix + ":attempt_p99_ratio",
                                on_p99 > 0 ? off_p99 / on_p99 : 0.0));
  std::snprintf(line, sizeof line,
                "  comparison: success_rate_delta=%+.3f  attempt_p99 %0.1fms -> %0.1fms\n",
                success_rate(on.load) - success_rate(off.load), off_p99, on_p99);
  out.text += line;
  return out;
}

}  // namespace

int main() {
  bench::print_title(
      "Figure 5 variant: backup mode under a single-backup outage, resilience on/off");

  std::vector<bench::SweepPoint> points;
  for (std::size_t li = 0; li < std::size(kLoads); ++li) {
    const double load = kLoads[li];
    const std::uint64_t seed = 9000 + 100 * li;
    points.push_back({"outage load=" + std::to_string(static_cast<int>(load)),
                      [=] { return run_outage_point(load, seed); }});
  }

  bench::BenchReport report("fig5_resilience_outage");
  bench::run_sweep(points, &report);
  report.write();
  return 0;
}
