#include "harness.h"

#include "obs/journal.h"
#include "obs/metrics_registry.h"
#include "obs/tracer.h"
#include "sim/failure.h"

#include <algorithm>
#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>

namespace dauth::bench {
namespace {

struct Placement {
  sim::Testbed testbed;
  sim::NodeIndex directory_node = 0;
  sim::NodeIndex ran_node = 0;
  sim::NodeIndex serving_node = 0;
};

/// Adds the scenario-dependent nodes and links to a network that already
/// exists; `serving_workers` lets the baseline model Open5GS's
/// single-threaded core.
Placement build_placement(sim::Network& network, sim::Scenario scenario,
                          int serving_workers) {
  Placement p;
  p.testbed = sim::build_appendix_c_testbed(network);

  auto dir_cfg = sim::profile(sim::NodeClass::kCloud, "directory");
  dir_cfg.workers = 4;
  p.directory_node = network.add_node(dir_cfg);

  p.ran_node = sim::is_residential(scenario) ? p.testbed.ran_sites[0]   // home-A
                                             : p.testbed.ran_sites[1];  // uni-lab

  if (sim::is_cloud(scenario)) {
    auto cfg = sim::profile(sim::NodeClass::kCloud, "serving-cloud");
    cfg.workers = serving_workers;
    p.serving_node = network.add_node(cfg);
    if (!sim::is_residential(scenario)) {
      // Fiber RAN site ~5ms RTT from its nearby datacenter region; the
      // residential site keeps its natural (cable last-mile) path.
      sim::LatencyModel dc_link;
      dc_link.base = msf(2.5);
      dc_link.jitter_sigma = 0.15;
      network.set_link(p.ran_node, p.serving_node, dc_link);
    }
  } else {
    auto cfg = sim::profile(sim::is_residential(scenario)
                                ? sim::NodeClass::kResidentialEdge
                                : sim::NodeClass::kScnEdge,
                            "serving-edge");
    cfg.workers = serving_workers;
    p.serving_node = network.add_node(cfg);
    // The edge PC sits at the RAN site: sub-millisecond LAN link.
    sim::LatencyModel lan;
    lan.base = usf(250);
    lan.jitter_sigma = 0.05;
    network.set_link(p.ran_node, p.serving_node, lan);
  }
  return p;
}

Supi pool_supi(std::size_t index) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "315010%09zu", index + 1);
  return Supi(buf);
}

}  // namespace

// ---- DauthBench -------------------------------------------------------------

struct DauthBench::Impl {
  DauthOptions options;
  sim::Simulator simulator;
  sim::Network network{simulator};
  sim::Rpc rpc{network};
  directory::DirectoryServer directory_server;
  Placement placement;
  sim::NodeIndex home_node = 0;
  std::unique_ptr<core::DauthNode> home_net;
  std::unique_ptr<core::DauthNode> serving_net;  // null when home_is_serving
  std::vector<std::unique_ptr<core::DauthNode>> backup_nets;
  std::unique_ptr<sim::FailureInjector> injector;
  std::vector<std::unique_ptr<ran::Ue>> ues;
  std::unique_ptr<ran::LoadGenerator> generator;
  std::unique_ptr<obs::Tracer> tracer;
  std::unique_ptr<obs::MetricsRegistry> registry;
  std::unique_ptr<obs::EventJournal> journal;

  explicit Impl(const DauthOptions& opts) : options(opts), simulator(opts.seed) {
    rpc.set_connection_reuse(opts.connection_reuse);
    placement = build_placement(network, opts.scenario, /*serving_workers=*/2);
    directory_server.bind(rpc, placement.directory_node);

    // Home network: colocated with the serving core (Fig. 3 local mode) or
    // a nearby SCN edge PC on fiber.
    if (opts.home_is_serving) {
      home_node = placement.serving_node;
    } else {
      auto home_cfg = sim::profile(sim::NodeClass::kScnEdge, "home-pc");
      home_node = network.add_node(home_cfg);
    }
    home_net = std::make_unique<core::DauthNode>(rpc, home_node, NetworkId("home-net"),
                                                 placement.directory_node, directory_server,
                                                 opts.config, opts.seed + 1);

    if (!opts.home_is_serving) {
      serving_net = std::make_unique<core::DauthNode>(
          rpc, placement.serving_node, NetworkId("serving-net"), placement.directory_node,
          directory_server, opts.config, opts.seed + 2);
    }

    // Backup networks on testbed core nodes.
    std::vector<sim::NodeIndex> candidates;
    if (opts.backup_pool == BackupPool::kNonCloud) {
      for (auto n : placement.testbed.scn_edges) candidates.push_back(n);
      for (auto n : placement.testbed.residential) candidates.push_back(n);
      for (auto n : placement.testbed.uni_lab) candidates.push_back(n);
    } else {
      candidates = placement.testbed.core_nodes();
    }
    // Deterministic shuffle ("8 random backups", §6.3.2 / Fig. 5).
    auto& rng = simulator.rng();
    for (std::size_t i = candidates.size(); i > 1; --i) {
      std::swap(candidates[i - 1], candidates[rng.next_below(i)]);
    }
    const std::size_t count = std::min(opts.backup_count, candidates.size());
    std::vector<NetworkId> backup_ids;
    for (std::size_t i = 0; i < count; ++i) {
      const NetworkId id("backup-" + network.node(candidates[i]).name());
      backup_nets.push_back(std::make_unique<core::DauthNode>(
          rpc, candidates[i], id, placement.directory_node, directory_server, opts.config,
          opts.seed + 10 + i));
      backup_ids.push_back(id);
    }
    home_net->set_backups(backup_ids);

    // Subscribers + dissemination.
    std::vector<aka::SubscriberKeys> keys(opts.pool_size);
    for (std::size_t i = 0; i < opts.pool_size; ++i) {
      keys[i] = home_net->provision_subscriber(pool_supi(i));
      home_net->home().disseminate(pool_supi(i));
    }
    simulator.run();  // complete all dissemination

    // Observability goes live only now, so spans/events/counters describe
    // measured attaches rather than the provisioning storm.
    if (opts.trace) {
      tracer = std::make_unique<obs::Tracer>([this] { return simulator.now(); },
                                             &simulator.rng());
      registry = std::make_unique<obs::MetricsRegistry>();
      journal = std::make_unique<obs::EventJournal>([this] { return simulator.now(); });
      rpc.set_tracer(tracer.get());
      home_net->set_observability(registry.get(), journal.get());
      if (serving_net) serving_net->set_observability(registry.get(), journal.get());
      for (auto& b : backup_nets) b->set_observability(registry.get(), journal.get());
    }

    if (opts.home_offline) {
      network.node(home_node).set_online(false);
      rpc.reset_connections(home_node);
      // Pre-warm the health cache: steady-state backup-mode measurements
      // shouldn't include the one-time 800ms discovery timeout.
      if (serving_net) serving_net->serving().set_home_health(home_net->id(), false);
    }

    // Announced backup outages: the injector's liveness feed force-opens the
    // circuits toward the dead nodes at outage start, so the resilience layer
    // (when enabled) never burns a timeout discovering them.
    if (opts.backup_outages > 0) {
      injector = std::make_unique<sim::FailureInjector>(network, &rpc);
      const std::size_t down = std::min(opts.backup_outages, backup_nets.size());
      for (std::size_t i = 0; i < down; ++i) {
        injector->schedule_outage(backup_nets[i]->node(),
                                  simulator.now() + opts.outage_start,
                                  opts.outage_duration);
      }
    }

    // UE pool on the RAN site, attached to the serving core.
    const auto profile = opts.physical_ran
                             ? ran::physical_ran_profile(opts.config.serving_network_name)
                             : ran::emulated_ran_profile(opts.config.serving_network_name);
    const sim::NodeIndex core_node =
        opts.home_is_serving ? home_node : placement.serving_node;
    for (std::size_t i = 0; i < opts.pool_size; ++i) {
      ues.push_back(std::make_unique<ran::Ue>(rpc, placement.ran_node, core_node,
                                              pool_supi(i), keys[i], profile));
    }
    std::vector<ran::Ue*> pool;
    for (auto& ue : ues) pool.push_back(ue.get());
    generator = std::make_unique<ran::LoadGenerator>(simulator, std::move(pool));
  }
};

DauthBench::DauthBench(const DauthOptions& options) : impl_(std::make_unique<Impl>(options)) {}
DauthBench::~DauthBench() = default;

ran::LoadResult DauthBench::run_load(double per_minute, Time duration) {
  return impl_->generator->run(per_minute, duration, /*poisson=*/true);
}

ran::AttachRecord DauthBench::single_attach() {
  std::optional<ran::AttachRecord> record;
  impl_->ues.front()->attach([&](const ran::AttachRecord& r) { record = r; });
  // Drain with run_until so any armed report retries don't wedge us.
  const Time deadline = impl_->simulator.now() + sec(30);
  while (!record && impl_->simulator.now() < deadline) {
    impl_->simulator.run_until(impl_->simulator.now() + ms(100));
  }
  if (!record) throw std::runtime_error("single_attach never completed");
  return *record;
}

const core::ServingMetrics& DauthBench::serving_metrics() const {
  return impl_->serving_net ? impl_->serving_net->serving().metrics()
                            : impl_->home_net->serving().metrics();
}

sim::Simulator& DauthBench::simulator() { return impl_->simulator; }

obs::Tracer* DauthBench::tracer() { return impl_->tracer.get(); }
obs::MetricsRegistry* DauthBench::metrics_registry() { return impl_->registry.get(); }
obs::EventJournal* DauthBench::journal() { return impl_->journal.get(); }

// ---- BaselineBench ----------------------------------------------------------

struct BaselineBench::Impl {
  BaselineOptions options;
  sim::Simulator simulator;
  sim::Network network{simulator};
  sim::Rpc rpc{network};
  Placement placement;
  std::unique_ptr<baseline::StandaloneCore> serving_core;
  std::unique_ptr<baseline::StandaloneCore> home_core;  // roaming only
  std::vector<std::unique_ptr<ran::Ue>> ues;
  std::unique_ptr<ran::LoadGenerator> generator;

  explicit Impl(const BaselineOptions& opts) : options(opts), simulator(opts.seed) {
    // Open5GS's auth path is single-threaded: one worker.
    placement = build_placement(network, opts.scenario, /*serving_workers=*/1);

    serving_core = std::make_unique<baseline::StandaloneCore>(
        rpc, placement.serving_node, "open5gs-serving", opts.core_config, opts.seed + 1);

    sim::NodeIndex hss_node = placement.serving_node;
    if (opts.roaming) {
      auto hss_cfg = sim::profile(sim::NodeClass::kCloud, "open5gs-home-hss");
      hss_cfg.workers = 1;
      hss_node = network.add_node(hss_cfg);
      // ~5ms RTT between the serving network and the subscriber's home
      // network (§6.3.2).
      sim::LatencyModel dc_link;
      dc_link.base = msf(2.5);
      dc_link.jitter_sigma = 0.15;
      network.set_link(placement.serving_node, hss_node, dc_link);
      home_core = std::make_unique<baseline::StandaloneCore>(
          rpc, hss_node, "open5gs-home", opts.core_config, opts.seed + 2);
      serving_core->set_remote_hss(hss_node);
      home_core->bind_services();
    }
    serving_core->bind_services();

    crypto::DeterministicDrbg key_rng("baseline-subscribers", opts.seed);
    const auto profile =
        opts.physical_ran
            ? ran::physical_ran_profile(opts.core_config.serving_network_name)
            : ran::emulated_ran_profile(opts.core_config.serving_network_name);
    for (std::size_t i = 0; i < opts.pool_size; ++i) {
      aka::SubscriberKeys keys;
      keys.k = key_rng.array<16>();
      keys.opc = crypto::derive_opc(keys.k, key_rng.array<16>());
      (opts.roaming ? *home_core : *serving_core).provision_subscriber(pool_supi(i), keys);
      ues.push_back(std::make_unique<ran::Ue>(rpc, placement.ran_node,
                                              placement.serving_node, pool_supi(i), keys,
                                              profile));
    }
    std::vector<ran::Ue*> pool;
    for (auto& ue : ues) pool.push_back(ue.get());
    generator = std::make_unique<ran::LoadGenerator>(simulator, std::move(pool));
  }
};

BaselineBench::BaselineBench(const BaselineOptions& options)
    : impl_(std::make_unique<Impl>(options)) {}
BaselineBench::~BaselineBench() = default;

ran::LoadResult BaselineBench::run_load(double per_minute, Time duration) {
  return impl_->generator->run(per_minute, duration, /*poisson=*/true);
}

ran::AttachRecord BaselineBench::single_attach() {
  std::optional<ran::AttachRecord> record;
  impl_->ues.front()->attach([&](const ran::AttachRecord& r) { record = r; });
  impl_->simulator.run();
  if (!record) throw std::runtime_error("single_attach never completed");
  return *record;
}

sim::Simulator& BaselineBench::simulator() { return impl_->simulator; }

// ---- Sweep scheduling -------------------------------------------------------

Time duration_for(double per_minute, double target_arrivals, double min_minutes,
                  double max_minutes) {
  const double minutes =
      std::min(max_minutes, std::max(min_minutes, target_arrivals / per_minute));
  return static_cast<Time>(minutes * static_cast<double>(kMinute));
}

int sweep_threads() {
  if (const char* env = std::getenv("DAUTH_BENCH_THREADS"); env && *env) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

std::vector<PointResult> run_sweep_collect(const std::vector<SweepPoint>& points,
                                           int threads) {
  if (threads <= 0) threads = sweep_threads();
  threads = std::min<int>(threads, static_cast<int>(points.size()));

  std::vector<PointResult> results(points.size());
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::mutex progress_mutex;

  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= points.size()) return;
      try {
        results[i] = points[i].run();
      } catch (const std::exception& e) {
        results[i].text = "point '" + points[i].name + "' failed: " + e.what() + "\n";
      }
      const std::size_t finished = done.fetch_add(1, std::memory_order_relaxed) + 1;
      std::lock_guard<std::mutex> lock(progress_mutex);
      std::fprintf(stderr, "[%zu/%zu] %s\n", finished, points.size(),
                   points[i].name.c_str());
    }
  };

  if (threads <= 1) {
    worker();  // in-line: no pool, same code path, same output
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
  }
  return results;
}

void run_sweep(const std::vector<SweepPoint>& points, BenchReport* report,
               int threads) {
  if (threads <= 0) threads = sweep_threads();
  if (report) report->set_threads(std::min<int>(threads, static_cast<int>(points.size())));
  const auto results = run_sweep_collect(points, threads);
  for (const PointResult& r : results) {
    std::fputs(r.text.c_str(), stdout);
    if (report) {
      for (const ReportRow& row : r.rows) report->add(row);
    }
  }
  std::fflush(stdout);
}

// ---- Output helpers ---------------------------------------------------------

namespace {

std::string strprintf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

std::string strprintf(const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  return std::string(
      buf, n < 0 ? 0 : std::min(static_cast<std::size_t>(n), sizeof buf - 1));
}

}  // namespace

void print_title(const std::string& title) {
  std::printf("\n# %s\n", title.c_str());
}

std::string format_summary(const std::string& label, SampleSet& samples) {
  return strprintf("%-42s %s\n", label.c_str(), samples.summary().c_str());
}

void print_summary(const std::string& label, SampleSet& samples) {
  std::fputs(format_summary(label, samples).c_str(), stdout);
}

std::string format_cdf(const std::string& label, SampleSet& samples,
                       std::size_t points) {
  std::string out;
  for (const auto& [x, f] : samples.cdf_points(points)) {
    out += strprintf("cdf,%s,%.1f,%.3f\n", label.c_str(), x, f);
  }
  return out;
}

void print_cdf(const std::string& label, SampleSet& samples, std::size_t points) {
  std::fputs(format_cdf(label, samples, points).c_str(), stdout);
}

std::string format_boxplot(const std::string& label, SampleSet& samples) {
  if (samples.empty()) return strprintf("box,%s,n=0\n", label.c_str());
  return strprintf("box,%s,%.1f,%.1f,%.1f,%.1f,%.1f,%.1f\n", label.c_str(),
                   samples.min(), samples.quantile(0.25), samples.median(),
                   samples.quantile(0.75), samples.quantile(0.95), samples.max());
}

void print_boxplot(const std::string& label, SampleSet& samples) {
  std::fputs(format_boxplot(label, samples).c_str(), stdout);
}

std::string format_quantiles(const std::string& label, double load_per_minute,
                             SampleSet& samples) {
  if (samples.empty()) {
    return strprintf("quant,%s,%.0f,n=0\n", label.c_str(), load_per_minute);
  }
  return strprintf("quant,%s,%.0f,%.1f,%.1f,%.1f,%.1f\n", label.c_str(),
                   load_per_minute, samples.quantile(0.5), samples.quantile(0.9),
                   samples.quantile(0.95), samples.quantile(0.99));
}

void print_quantiles(const std::string& label, double load_per_minute, SampleSet& samples) {
  std::fputs(format_quantiles(label, load_per_minute, samples).c_str(), stdout);
}

}  // namespace dauth::bench
