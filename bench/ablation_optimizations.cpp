// Ablation bench for the design choices DESIGN.md calls out:
//   1. gRPC connection re-use between dAuth instances (§5.1 opt. 1)
//   2. racing GetAuthVector across multiple backups (§5.1 opt. 3)
//   3. plain Shamir shares vs Feldman verifiable shares (§3.5.2)
//   4. the signature-verification memo cache (docs/PERFORMANCE.md): raced
//      backup replies re-verify byte-identical bundles, so disabling the
//      cache pays a full Ed25519 verify per duplicate
//   5. Open5GS roaming with on-demand vs persistent S6a/N12 connections
// All variants run the same backup-mode workload (edge serving core on
// fiber, 8 backups, threshold 4, 200 registrations/min), each as an
// independent deterministically-seeded point on the sweep thread pool.
#include <cstdio>

#include "harness.h"

using namespace dauth;

namespace {

constexpr double kLoad = 200;
const Time kDuration = minutes(2);

struct DauthVariant {
  std::string label;
  bool connection_reuse = true;
  std::size_t race_width = 2;
  bool verifiable_shares = false;
  std::size_t verify_cache_entries = 256;
};

bench::PointResult run_dauth_variant(const DauthVariant& v, std::uint64_t seed) {
  bench::DauthOptions options;
  options.scenario = sim::Scenario::kEdgeFiber;
  options.pool_size = 96;
  options.backup_count = 8;
  options.home_offline = true;
  options.connection_reuse = v.connection_reuse;
  options.config.threshold = 4;
  options.config.vector_race_width = v.race_width;
  options.config.use_verifiable_shares = v.verifiable_shares;
  options.config.verify_cache_entries = v.verify_cache_entries;
  options.config.vectors_per_backup = 16;
  options.config.report_interval = 0;
  options.seed = seed;
  bench::DauthBench harness(options);
  auto result = harness.run_load(kLoad, kDuration);

  bench::PointResult out;
  out.text = bench::format_summary(v.label, result.latencies);
  out.rows.push_back(bench::make_row(v.label, kLoad, result.latencies, "summary"));
  return out;
}

bench::PointResult run_roaming_variant(bool reuse, std::uint64_t seed) {
  bench::BaselineOptions options;
  options.scenario = sim::Scenario::kEdgeFiber;
  options.pool_size = 96;
  options.roaming = true;
  options.core_config.reuse_roaming_connections = reuse;
  options.seed = seed;
  bench::BaselineBench harness(options);
  auto result = harness.run_load(kLoad, kDuration);

  const std::string label =
      reuse ? "roaming, persistent S6a/N12" : "roaming, on-demand S6a/N12";
  bench::PointResult out;
  out.text = bench::format_summary(label, result.latencies);
  out.rows.push_back(bench::make_row(label, kLoad, result.latencies, "summary"));
  return out;
}

}  // namespace

int main() {
  bench::print_title("Ablation: dAuth prototype optimizations (backup mode, 200/min)");

  const DauthVariant variants[] = {
      {"baseline (reuse + race2 + shamir + vcache)"},
      {"no connection reuse", false},
      {"no vector racing (width 1)", true, 1},
      {"wider vector racing (width 4)", true, 4},
      {"feldman verifiable shares", true, 2, true},
      {"no verification cache", true, 2, false, 0},
  };

  std::vector<bench::SweepPoint> points;
  for (std::size_t i = 0; i < std::size(variants); ++i) {
    const DauthVariant v = variants[i];
    points.push_back({v.label, [=] { return run_dauth_variant(v, 42 + 10 * i); }});
  }
  points.push_back({"roaming header + on-demand", [] {
                      auto r = run_roaming_variant(false, 142);
                      r.text = "\nOpen5GS roaming connection handling (same load):\n" +
                               r.text;
                      return r;
                    }});
  points.push_back({"roaming persistent", [] { return run_roaming_variant(true, 152); }});

  bench::BenchReport report("ablation_optimizations");
  bench::run_sweep(points, &report);
  report.write();
  return 0;
}
