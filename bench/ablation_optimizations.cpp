// Ablation bench for the design choices DESIGN.md calls out:
//   1. gRPC connection re-use between dAuth instances (§5.1 opt. 1)
//   2. racing GetAuthVector across multiple backups (§5.1 opt. 3)
//   3. plain Shamir shares vs Feldman verifiable shares (§3.5.2)
//   4. Open5GS roaming with on-demand vs persistent S6a/N12 connections
// All variants run the same backup-mode workload (edge serving core on
// fiber, 8 backups, threshold 4, 200 registrations/min).
#include <cstdio>

#include "harness.h"

using namespace dauth;

namespace {

constexpr double kLoad = 200;
const Time kDuration = minutes(2);

ran::LoadResult run_variant(bool connection_reuse, std::size_t race_width,
                            bool verifiable_shares) {
  bench::DauthOptions options;
  options.scenario = sim::Scenario::kEdgeFiber;
  options.pool_size = 96;
  options.backup_count = 8;
  options.home_offline = true;
  options.connection_reuse = connection_reuse;
  options.config.threshold = 4;
  options.config.vector_race_width = race_width;
  options.config.use_verifiable_shares = verifiable_shares;
  options.config.vectors_per_backup = 16;
  options.config.report_interval = 0;
  bench::DauthBench harness(options);
  return harness.run_load(kLoad, kDuration);
}

}  // namespace

int main() {
  bench::print_title("Ablation: dAuth prototype optimizations (backup mode, 200/min)");

  {
    auto result = run_variant(true, 2, false);
    bench::print_summary("baseline (reuse + race2 + shamir)", result.latencies);
  }
  {
    auto result = run_variant(false, 2, false);
    bench::print_summary("no connection reuse", result.latencies);
  }
  {
    auto result = run_variant(true, 1, false);
    bench::print_summary("no vector racing (width 1)", result.latencies);
  }
  {
    auto result = run_variant(true, 4, false);
    bench::print_summary("wider vector racing (width 4)", result.latencies);
  }
  {
    auto result = run_variant(true, 2, true);
    bench::print_summary("feldman verifiable shares", result.latencies);
  }

  std::printf("\nOpen5GS roaming connection handling (same load):\n");
  for (bool reuse : {false, true}) {
    bench::BaselineOptions options;
    options.scenario = sim::Scenario::kEdgeFiber;
    options.pool_size = 96;
    options.roaming = true;
    options.core_config.reuse_roaming_connections = reuse;
    bench::BaselineBench harness(options);
    auto result = harness.run_load(kLoad, kDuration);
    bench::print_summary(reuse ? "roaming, persistent S6a/N12"
                               : "roaming, on-demand S6a/N12",
                         result.latencies);
  }
  return 0;
}
