// Table 1 reproduction: SCN site availability, plus the availability of the
// *authentication service* with and without dAuth.
//
// The paper's Table 1 reports measured uptime of the deployed LTE sites
// (87.2%-99.0%, none reaching three nines). We synthesize per-site outage
// processes (exponential MTBF/MTTR calibrated to the reported
// availabilities), then quantify the headline benefit of dAuth: a user can
// still authenticate during a home-site outage as long as at least one
// backup holds a vector and `threshold` backups are reachable for shares.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "harness.h"
#include "sim/failure.h"

namespace {

using namespace dauth;

struct Site {
  std::string name;
  double paper_availability;  // from Table 1
  Time mtbf;                  // calibrated failure process
};

}  // namespace

int main() {
  bench::print_title(
      "Table 1: SCN site availability and dAuth authentication availability");
  std::printf(
      "Synthetic outage traces (1 simulated year, exponential MTBF/MTTR)\n"
      "calibrated to the paper's measured site availabilities. 'auth-avail'\n"
      "is the fraction of time a site's subscribers can authenticate:\n"
      "standalone = home site up; dAuth(M) = home up OR >= M of the other\n"
      "sites (its backups) up.\n\n");

  // MTTR follows from availability: u = MTTR / (MTBF + MTTR).
  const std::vector<Site> sites = {
      {"co-working-space", 0.99021, 21 * kDay},
      {"school-1", 0.98998, 21 * kDay},
      {"community-center-1", 0.95815, 14 * kDay},
      {"library-1", 0.91821, 10 * kDay},
      {"school-2", 0.89562, 10 * kDay},
      {"community-center-2", 0.87171, 8 * kDay},
  };
  const Time kHorizon = 365 * kDay;

  sim::Simulator simulator(20240804);
  sim::Network network(simulator);
  std::vector<sim::NodeIndex> nodes;
  for (const Site& site : sites) {
    sim::NodeConfig cfg;
    cfg.name = site.name;
    nodes.push_back(network.add_node(cfg));
  }

  sim::FailureInjector injector(network);
  std::vector<std::vector<sim::Outage>> outages(sites.size());
  for (std::size_t i = 0; i < sites.size(); ++i) {
    const double unavailability = 1.0 - sites[i].paper_availability;
    const Time mttr = static_cast<Time>(static_cast<double>(sites[i].mtbf) *
                                        unavailability / (1.0 - unavailability));
    outages[i] = injector.schedule_random_outages(nodes[i], sites[i].mtbf, mttr, kHorizon);
  }

  // Timeline sweep in 1-minute steps.
  auto is_down = [&](std::size_t site, Time t) {
    for (const sim::Outage& o : outages[site]) {
      if (t >= o.start && t < o.start + o.duration) return true;
    }
    return false;
  };

  const int thresholds[] = {2, 3, 4};
  std::vector<Time> up_alone(sites.size(), 0);
  std::vector<std::array<Time, 3>> up_dauth(sites.size(), {0, 0, 0});

  for (Time t = 0; t < kHorizon; t += kMinute) {
    int total_up = 0;
    std::vector<bool> down(sites.size());
    for (std::size_t i = 0; i < sites.size(); ++i) {
      down[i] = is_down(i, t);
      if (!down[i]) ++total_up;
    }
    for (std::size_t i = 0; i < sites.size(); ++i) {
      if (!down[i]) {
        up_alone[i] += kMinute;
        for (auto& u : up_dauth[i]) u += kMinute;
        continue;
      }
      // Home down: backups are the other 5 sites.
      const int backups_up = total_up;  // home is down, so all up sites are backups
      for (int k = 0; k < 3; ++k) {
        if (backups_up >= thresholds[k]) up_dauth[i][k] += kMinute;
      }
    }
  }

  std::printf("%-22s %10s %10s | %12s %12s %12s %12s\n", "site", "paper", "simulated",
              "standalone", "dauth(M=2)", "dauth(M=3)", "dauth(M=4)");
  const auto pct = [&](Time up) {
    return 100.0 * static_cast<double>(up) / static_cast<double>(kHorizon);
  };
  bench::BenchReport report("table1_availability");
  double worst_alone = 100.0, worst_dauth2 = 100.0;
  for (std::size_t i = 0; i < sites.size(); ++i) {
    std::printf("%-22s %9.3f%% %9.3f%% | %11.3f%% %11.3f%% %11.3f%% %11.3f%%\n",
                sites[i].name.c_str(), 100.0 * sites[i].paper_availability,
                pct(up_alone[i]), pct(up_alone[i]), pct(up_dauth[i][0]),
                pct(up_dauth[i][1]), pct(up_dauth[i][2]));
    report.add_scalar(sites[i].name + ":standalone_pct", pct(up_alone[i]));
    report.add_scalar(sites[i].name + ":dauth_m2_pct", pct(up_dauth[i][0]));
    report.add_scalar(sites[i].name + ":dauth_m3_pct", pct(up_dauth[i][1]));
    report.add_scalar(sites[i].name + ":dauth_m4_pct", pct(up_dauth[i][2]));
    worst_alone = std::min(worst_alone, pct(up_alone[i]));
    worst_dauth2 = std::min(worst_dauth2, pct(up_dauth[i][0]));
  }
  std::printf(
      "\nWorst-site auth availability: standalone %.3f%% -> dAuth(M=2) %.3f%%\n"
      "(the federation turns six sub-three-nines sites into a near-always-\n"
      "available authentication service, the core claim of the paper)\n",
      worst_alone, worst_dauth2);
  report.add_scalar("worst_site:standalone_pct", worst_alone);
  report.add_scalar("worst_site:dauth_m2_pct", worst_dauth2);
  report.write();
  return 0;
}
