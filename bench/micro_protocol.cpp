// Microbenchmarks for dAuth protocol operations: bundle generation, message
// (de)serialization, signing/verification of bundles, SUCI concealment, and
// full vector-generation as a home network performs it.
#include <benchmark/benchmark.h>

#include "micro_main.h"

#include "aka/auth_vector.h"
#include "aka/sim_card.h"
#include "aka/suci.h"
#include "core/home_network.h"
#include "core/messages.h"
#include "crypto/drbg.h"

namespace dauth::core {
namespace {

aka::SubscriberKeys bench_keys() {
  crypto::DeterministicDrbg rng("proto-bench", 1);
  aka::SubscriberKeys keys;
  keys.k = rng.array<16>();
  keys.opc = crypto::derive_opc(keys.k, rng.array<16>());
  return keys;
}

const std::string kSnn = crypto::serving_network_name("315", "010");

void BM_GenerateAuthVector(benchmark::State& state) {
  crypto::DeterministicDrbg rng("proto-bench", 2);
  const auto keys = bench_keys();
  std::uint64_t sqn = 32;
  for (auto _ : state) {
    benchmark::DoNotOptimize(aka::generate_auth_vector(keys, sqn, rng.array<16>(), kSnn));
    sqn += 32;
  }
}
BENCHMARK(BM_GenerateAuthVector);

void BM_UsimAuthenticate(benchmark::State& state) {
  crypto::DeterministicDrbg rng("proto-bench", 3);
  const auto keys = bench_keys();
  aka::Usim usim(Supi("315010000000001"), keys);
  std::uint64_t sqn = 32;
  for (auto _ : state) {
    const auto v = aka::generate_auth_vector(keys, sqn, rng.array<16>(), kSnn);
    sqn += 32;
    benchmark::DoNotOptimize(usim.authenticate(v.rand, v.autn, kSnn));
  }
}
BENCHMARK(BM_UsimAuthenticate);

AuthVectorBundle make_bundle(crypto::DeterministicDrbg& rng,
                             const crypto::Ed25519KeyPair& signer) {
  const auto keys = bench_keys();
  const auto v = aka::generate_auth_vector(keys, 32, rng.array<16>(), kSnn);
  AuthVectorBundle b;
  b.home_network = NetworkId("home-net");
  b.supi = Supi("315010000000001");
  b.sqn = v.sqn;
  b.rand = v.rand;
  b.autn = v.autn;
  b.hxres_star = hxres_index(v.xres_star);
  b.home_signature = crypto::ed25519_sign(b.signed_payload(), signer);
  return b;
}

void BM_BundleEncodeDecode(benchmark::State& state) {
  crypto::DeterministicDrbg rng("proto-bench", 4);
  const auto signer = crypto::ed25519_generate(rng);
  const auto bundle = make_bundle(rng, signer);
  for (auto _ : state) {
    benchmark::DoNotOptimize(AuthVectorBundle::decode(bundle.encode()));
  }
}
BENCHMARK(BM_BundleEncodeDecode);

void BM_BundleSign(benchmark::State& state) {
  crypto::DeterministicDrbg rng("proto-bench", 5);
  const auto signer = crypto::ed25519_generate(rng);
  auto bundle = make_bundle(rng, signer);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::ed25519_sign(bundle.signed_payload(), signer));
  }
}
BENCHMARK(BM_BundleSign);

void BM_BundleVerify(benchmark::State& state) {
  crypto::DeterministicDrbg rng("proto-bench", 6);
  const auto signer = crypto::ed25519_generate(rng);
  const auto bundle = make_bundle(rng, signer);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bundle.verify(signer.public_key));
  }
}
BENCHMARK(BM_BundleVerify);

void BM_SuciConceal(benchmark::State& state) {
  crypto::DeterministicDrbg rng("proto-bench", 7);
  const auto home = crypto::x25519_generate(rng);
  const Supi supi("315010000000001");
  for (auto _ : state) {
    benchmark::DoNotOptimize(aka::conceal_supi(supi, home.public_key, rng));
  }
}
BENCHMARK(BM_SuciConceal);

void BM_SuciDeconceal(benchmark::State& state) {
  crypto::DeterministicDrbg rng("proto-bench", 8);
  const auto home = crypto::x25519_generate(rng);
  const auto suci = aka::conceal_supi(Supi("315010000000001"), home.public_key, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(aka::deconceal_suci(suci, home.secret));
  }
}
BENCHMARK(BM_SuciDeconceal);

/// The complete home-side dissemination work for ONE vector with N backups:
/// vector generation + Shamir split + N+1 signatures.
void BM_DisseminateOneVector(benchmark::State& state) {
  crypto::DeterministicDrbg rng("proto-bench", 9);
  const auto signer = crypto::ed25519_generate(rng);
  const auto keys = bench_keys();
  const auto n_backups = static_cast<std::size_t>(state.range(0));
  std::uint64_t sqn = 32;
  for (auto _ : state) {
    const auto v = aka::generate_auth_vector(keys, sqn, rng.array<16>(), kSnn);
    sqn += 32;
    AuthVectorBundle bundle;
    bundle.home_network = NetworkId("home-net");
    bundle.supi = Supi("315010000000001");
    bundle.sqn = v.sqn;
    bundle.rand = v.rand;
    bundle.autn = v.autn;
    bundle.hxres_star = hxres_index(v.xres_star);
    bundle.home_signature = crypto::ed25519_sign(bundle.signed_payload(), signer);

    const auto shares = crypto::shamir_split(ByteView(v.k_seaf), 4, n_backups, rng);
    for (const auto& share : shares) {
      KeyShareBundle ks;
      ks.home_network = bundle.home_network;
      ks.supi = bundle.supi;
      ks.hxres_star = bundle.hxres_star;
      ks.share = share;
      ks.home_signature = crypto::ed25519_sign(ks.signed_payload(), signer);
      benchmark::DoNotOptimize(ks);
    }
  }
}
BENCHMARK(BM_DisseminateOneVector)->Arg(4)->Arg(8)->Arg(16);

}  // namespace
}  // namespace dauth::core

int main(int argc, char** argv) {
  return dauth::bench::run_micro_benchmarks(argc, argv, "micro_protocol");
}
