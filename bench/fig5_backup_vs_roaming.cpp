// Figure 5 reproduction: dAuth backup-mode authentication (8 random
// backups, key-share threshold 4, home network offline) vs traditional
// Open5GS roaming to a ~5ms-RTT home core, across the four §6.3.1
// scenarios and three load levels.
//
// Expected shape: backup mode is slower than home mode / standalone at low
// load (extra fan-out and crypto), but at 200 and 1000 registrations per
// minute it outperforms the centralized roaming core — the home HSS is a
// single choke point that also pays a fresh S6a/N12 connection per request,
// while dAuth load-shares across the backups over persistent channels.
#include <cstdio>

#include "harness.h"

using namespace dauth;

namespace {

constexpr double kLoads[] = {20, 200, 1000};

Time duration_for(double per_minute) {
  const double minutes = std::min(10.0, std::max(1.5, 240.0 / per_minute));
  return static_cast<Time>(minutes * static_cast<double>(kMinute));
}

}  // namespace

int main() {
  bench::print_title("Figure 5: dAuth backup mode vs Open5GS roaming (~5ms RTT home)");

  const sim::Scenario scenarios[] = {
      sim::Scenario::kEdgeFiber, sim::Scenario::kEdgeResidential,
      sim::Scenario::kCloudFiber, sim::Scenario::kCloudResidential};

  for (double load : kLoads) {
    std::printf("\n== %g registrations per minute ==\n", load);
    for (sim::Scenario scenario : scenarios) {
      {  // dAuth backup mode: 8 random backups, threshold 4.
        bench::DauthOptions options;
        options.scenario = scenario;
        options.pool_size = 64;
        options.backup_count = 8;
        options.home_offline = true;
        options.config.threshold = 4;
        options.config.vectors_per_backup = 10;
        options.config.report_interval = 0;  // home stays down
        bench::DauthBench harness(options);
        auto result = harness.run_load(load, duration_for(load));
        const std::string label =
            std::string("dauth-backup,") + sim::to_string(scenario);
        bench::print_summary(label, result.latencies);
        bench::print_cdf(label + "," + std::to_string(static_cast<int>(load)),
                         result.latencies, 12);
        if (result.failed > 0) {
          std::printf("  failures=%zu (%s)\n", result.failed,
                      result.failures.empty() ? "?" : result.failures.front().c_str());
        }
      }
      {  // Open5GS traditional roaming.
        bench::BaselineOptions options;
        options.scenario = scenario;
        options.pool_size = 64;
        options.roaming = true;
        bench::BaselineBench harness(options);
        auto result = harness.run_load(load, duration_for(load));
        const std::string label =
            std::string("open5gs-roaming,") + sim::to_string(scenario);
        bench::print_summary(label, result.latencies);
        bench::print_cdf(label + "," + std::to_string(static_cast<int>(load)),
                         result.latencies, 12);
        if (result.failed > 0) std::printf("  failures=%zu\n", result.failed);
      }
    }
  }
  return 0;
}
