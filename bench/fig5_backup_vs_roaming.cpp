// Figure 5 reproduction: dAuth backup-mode authentication (8 random
// backups, key-share threshold 4, home network offline) vs traditional
// Open5GS roaming to a ~5ms-RTT home core, across the four §6.3.1
// scenarios and three load levels.
//
// Expected shape: backup mode is slower than home mode / standalone at low
// load (extra fan-out and crypto), but at 200 and 1000 registrations per
// minute it outperforms the centralized roaming core — the home HSS is a
// single choke point that also pays a fresh S6a/N12 connection per request,
// while dAuth load-shares across the backups over persistent channels.
//
// Each (load, scenario, system) point is an independent, deterministically
// seeded simulation run on the sweep thread pool (harness.h).
#include <cstdio>

#include "harness.h"

using namespace dauth;

namespace {

constexpr double kLoads[] = {20, 200, 1000};

Time fig5_duration(double load) { return bench::duration_for(load, 240.0, 1.5, 10.0); }

bench::PointResult run_backup_point(sim::Scenario scenario, double load,
                                    std::uint64_t seed) {
  bench::DauthOptions options;
  options.scenario = scenario;
  options.pool_size = 64;
  options.backup_count = 8;
  options.home_offline = true;
  options.config.threshold = 4;
  options.config.vectors_per_backup = 10;
  options.config.report_interval = 0;  // home stays down
  options.seed = seed;
  bench::DauthBench harness(options);
  auto result = harness.run_load(load, fig5_duration(load));

  const std::string label = std::string("dauth-backup,") + sim::to_string(scenario);
  bench::PointResult out;
  out.text = bench::format_summary(label, result.latencies);
  out.text += bench::format_cdf(label + "," + std::to_string(static_cast<int>(load)),
                                result.latencies, 12);
  if (result.failed > 0) {
    char note[160];
    std::snprintf(note, sizeof note, "  failures=%zu (%s)\n", result.failed,
                  result.failures.empty() ? "?" : result.failures.front().c_str());
    out.text += note;
  }
  out.rows.push_back(bench::make_row(label, load, result.latencies, "summary"));
  return out;
}

bench::PointResult run_roaming_point(sim::Scenario scenario, double load,
                                     std::uint64_t seed) {
  bench::BaselineOptions options;
  options.scenario = scenario;
  options.pool_size = 64;
  options.roaming = true;
  options.seed = seed;
  bench::BaselineBench harness(options);
  auto result = harness.run_load(load, fig5_duration(load));

  const std::string label = std::string("open5gs-roaming,") + sim::to_string(scenario);
  bench::PointResult out;
  out.text = bench::format_summary(label, result.latencies);
  out.text += bench::format_cdf(label + "," + std::to_string(static_cast<int>(load)),
                                result.latencies, 12);
  if (result.failed > 0) {
    out.text += "  failures=" + std::to_string(result.failed) + "\n";
  }
  out.rows.push_back(bench::make_row(label, load, result.latencies, "summary"));
  return out;
}

}  // namespace

int main() {
  bench::print_title("Figure 5: dAuth backup mode vs Open5GS roaming (~5ms RTT home)");

  const sim::Scenario scenarios[] = {
      sim::Scenario::kEdgeFiber, sim::Scenario::kEdgeResidential,
      sim::Scenario::kCloudFiber, sim::Scenario::kCloudResidential};

  std::vector<bench::SweepPoint> points;
  for (std::size_t li = 0; li < std::size(kLoads); ++li) {
    const double load = kLoads[li];
    bool first_in_group = true;
    for (std::size_t si = 0; si < std::size(scenarios); ++si) {
      const sim::Scenario scenario = scenarios[si];
      const std::uint64_t seed = 5000 + 100 * li + 10 * si;
      const std::string header =
          first_in_group ? "\n== " + std::to_string(static_cast<int>(load)) +
                               " registrations per minute ==\n"
                         : "";
      first_in_group = false;
      points.push_back({std::string("dauth-backup ") + sim::to_string(scenario) +
                            " load=" + std::to_string(static_cast<int>(load)),
                        [=] {
                          auto r = run_backup_point(scenario, load, seed);
                          r.text = header + r.text;
                          return r;
                        }});
      points.push_back({std::string("open5gs-roaming ") + sim::to_string(scenario) +
                            " load=" + std::to_string(static_cast<int>(load)),
                        [=] { return run_roaming_point(scenario, load, seed + 5); }});
    }
  }

  bench::BenchReport report("fig5_backup_vs_roaming");
  bench::run_sweep(points, &report);
  report.write();
  return 0;
}
