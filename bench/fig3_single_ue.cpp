// Figure 3 reproduction: single-UE attach times on the physical testbed
// (Baicells eNodeB + srsUE profile).
//
// Conditions, as in §6.2.2:
//   * Open5GS           — stock edge core at the RAN site
//   * dAuth-home-online — dAuth core at the RAN site, user is local
//   * dAuth-backup[M]   — home network offline, 6 non-cloud SCN backups,
//                         key-share threshold M in {2, 4, 6}
// 250+ sequential attaches per condition. Outputs Fig. 3a boxplot rows and
// Fig. 3b CDF rows.
//
// Expected shape: dAuth-home ~ Open5GS; backup threshold 2 adds < 50 ms;
// threshold 6 is limited by the slowest backup (the Atom-class box on a
// high-latency backhaul) and grows a long tail.
//
// The five conditions run concurrently on the sweep thread pool; each owns
// an independent simulation, and the grouped boxplot/CDF/summary sections
// are printed after all conditions finish, so output stays deterministic.
// `--trace` runs a different mode: ONE backup-mode attach (threshold 2) with
// the full observability stack on, exports the span tree as a Perfetto-
// loadable Chrome trace (TRACE_fig3_backup_attach.json), checks the
// TraceAssert invariants over it, and writes a BENCH record carrying the
// metrics-registry JSON. The representative artifacts live in results/.
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "harness.h"
#include "obs/export.h"
#include "obs/journal.h"
#include "obs/metrics_registry.h"
#include "obs/trace_assert.h"
#include "obs/tracer.h"

using namespace dauth;

namespace {

constexpr int kSamples = 250;

struct ConditionResult {
  SampleSet samples;
  int failures = 0;
};

ConditionResult run_dauth(const bench::DauthOptions& options) {
  bench::DauthBench harness(options);
  ConditionResult r;
  for (int i = 0; i < kSamples; ++i) {
    const auto record = harness.single_attach();
    if (record.success) {
      r.samples.add_time(record.latency());
    } else {
      ++r.failures;
    }
  }
  return r;
}

/// One traced dAuth-backup[2] attach: the Fig. 3 condition whose span tree
/// actually exercises the whole federation (serving → directory → hedged
/// backup legs → share reconstruction).
int run_trace_mode() {
  bench::print_title("Figure 3 (--trace): one traced backup-mode attach, threshold 2");

  bench::DauthOptions options;
  options.scenario = sim::Scenario::kEdgeFiber;
  options.physical_ran = true;
  options.pool_size = 1;
  options.home_offline = true;
  options.backup_count = 6;
  options.backup_pool = bench::BackupPool::kNonCloud;
  options.config.threshold = 2;
  options.config.vectors_per_backup = 8;
  options.config.report_interval = 0;
  options.trace = true;

  bench::DauthBench harness(options);
  const auto record = harness.single_attach();
  if (!record.success) {
    std::fprintf(stderr, "traced attach failed: %s\n", record.failure.c_str());
    return 1;
  }

  obs::Tracer& tracer = *harness.tracer();
  obs::TraceId id = 0;
  for (const auto& span : tracer.spans()) {
    if (span.name == "attach") id = span.trace_id;
  }
  if (id == 0) {
    std::fprintf(stderr, "no attach span recorded\n");
    return 1;
  }

  const obs::TraceAssert check(tracer);
  for (const auto& result :
       {check.connected(id), check.share_threshold(id, options.config.threshold)}) {
    if (!result.ok) {
      std::fprintf(stderr, "trace invariant failed:\n%s\n", result.to_string().c_str());
      return 1;
    }
  }

  const std::string json = obs::chrome_trace_json(tracer);
  std::string error;
  if (!obs::validate_chrome_trace(json, &error)) {
    std::fprintf(stderr, "exported trace does not validate: %s\n", error.c_str());
    return 1;
  }

  std::string dir = ".";
  if (const char* env = std::getenv("DAUTH_BENCH_OUT"); env && *env) dir = env;
  const std::string path = dir + "/TRACE_fig3_backup_attach.json";
  if (!obs::write_file(path, json)) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("trace,ok,%s\n", path.c_str());
  std::printf("\n%s", obs::text_tree(tracer, id).c_str());

  bench::BenchReport report("fig3_single_ue_trace");
  report.set_threads(1);
  report.add_scalar("traced-attach-ms",
                    static_cast<double>(record.latency()) / static_cast<double>(ms(1)));
  report.add_scalar("trace-spans", static_cast<double>(tracer.trace(id).size()));
  report.add_scalar("journal-events",
                    static_cast<double>(harness.journal()->events().size()));
  report.set_registry_json(harness.metrics_registry()->to_json());
  report.write();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--trace") == 0) return run_trace_mode();
  bench::print_title("Figure 3: single-UE attach time, physical RAN profile");

  std::vector<std::string> labels;
  std::vector<ConditionResult> conditions;
  std::vector<bench::SweepPoint> points;
  // Each point deposits into its own pre-allocated slot; slots are disjoint,
  // so concurrent workers never share state.
  auto add_condition = [&](std::string label, std::function<ConditionResult()> run) {
    const std::size_t slot = labels.size();
    labels.push_back(std::move(label));
    conditions.emplace_back();
    points.push_back({labels.back(), [&conditions, slot, run] {
                        conditions[slot] = run();
                        return bench::PointResult{};
                      }});
  };

  add_condition("open5gs", [] {
    bench::BaselineOptions options;
    options.scenario = sim::Scenario::kEdgeFiber;
    options.physical_ran = true;
    options.pool_size = 1;
    bench::BaselineBench harness(options);
    ConditionResult r;
    for (int i = 0; i < kSamples; ++i) {
      const auto record = harness.single_attach();
      if (record.success) r.samples.add_time(record.latency());
    }
    return r;
  });

  add_condition("dauth-home-online", [] {
    bench::DauthOptions options;
    options.scenario = sim::Scenario::kEdgeFiber;
    options.physical_ran = true;
    options.pool_size = 1;
    options.home_is_serving = true;
    options.backup_count = 6;
    options.backup_pool = bench::BackupPool::kNonCloud;
    options.config.vectors_per_backup = 8;
    return run_dauth(options);
  });

  for (std::size_t threshold : {2u, 4u, 6u}) {  // dAuth backup mode.
    add_condition("dauth-backup-thresh[" + std::to_string(threshold) + "]",
                  [threshold] {
                    bench::DauthOptions options;
                    options.scenario = sim::Scenario::kEdgeFiber;
                    options.physical_ran = true;
                    options.pool_size = 1;
                    options.home_offline = true;
                    options.backup_count = 6;
                    options.backup_pool = bench::BackupPool::kNonCloud;
                    options.config.threshold = threshold;
                    // The race burns two vectors per attach.
                    options.config.vectors_per_backup = 2 * kSamples + 16;
                    options.config.report_interval = 0;  // home never returns
                    return run_dauth(options);
                  });
  }

  bench::BenchReport report("fig3_single_ue");
  report.set_threads(bench::sweep_threads());
  bench::run_sweep_collect(points);

  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (conditions[i].failures > 0) {
      std::printf("  (%d failed attaches excluded from %s)\n", conditions[i].failures,
                  labels[i].c_str());
    }
  }

  std::printf("\nFig 3a (boxplot rows: label,min,q1,median,q3,p95,max in ms)\n");
  for (std::size_t i = 0; i < labels.size(); ++i) {
    bench::print_boxplot(labels[i], conditions[i].samples);
  }

  std::printf("\nFig 3b (CDF rows: cdf,label,ms,fraction)\n");
  for (std::size_t i = 0; i < labels.size(); ++i) {
    bench::print_cdf(labels[i], conditions[i].samples, 16);
  }

  std::printf("\nSummaries\n");
  for (std::size_t i = 0; i < labels.size(); ++i) {
    bench::print_summary(labels[i], conditions[i].samples);
    report.add(bench::make_row(labels[i], 0, conditions[i].samples, "box"));
  }
  report.write();
  return 0;
}
