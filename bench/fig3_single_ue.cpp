// Figure 3 reproduction: single-UE attach times on the physical testbed
// (Baicells eNodeB + srsUE profile).
//
// Conditions, as in §6.2.2:
//   * Open5GS           — stock edge core at the RAN site
//   * dAuth-home-online — dAuth core at the RAN site, user is local
//   * dAuth-backup[M]   — home network offline, 6 non-cloud SCN backups,
//                         key-share threshold M in {2, 4, 6}
// 250+ sequential attaches per condition. Outputs Fig. 3a boxplot rows and
// Fig. 3b CDF rows.
//
// Expected shape: dAuth-home ~ Open5GS; backup threshold 2 adds < 50 ms;
// threshold 6 is limited by the slowest backup (the Atom-class box on a
// high-latency backhaul) and grows a long tail.
#include <cstdio>

#include "harness.h"

using namespace dauth;

namespace {

constexpr int kSamples = 250;

SampleSet run_dauth(const bench::DauthOptions& options) {
  bench::DauthBench harness(options);
  SampleSet samples;
  int failures = 0;
  for (int i = 0; i < kSamples; ++i) {
    const auto record = harness.single_attach();
    if (record.success) {
      samples.add_time(record.latency());
    } else {
      ++failures;
    }
  }
  if (failures > 0) std::printf("  (%d failed attaches excluded)\n", failures);
  return samples;
}

}  // namespace

int main() {
  bench::print_title("Figure 3: single-UE attach time, physical RAN profile");

  std::vector<std::pair<std::string, SampleSet>> results;

  {  // Baseline Open5GS edge core.
    bench::BaselineOptions options;
    options.scenario = sim::Scenario::kEdgeFiber;
    options.physical_ran = true;
    options.pool_size = 1;
    bench::BaselineBench harness(options);
    SampleSet samples;
    for (int i = 0; i < kSamples; ++i) {
      const auto record = harness.single_attach();
      if (record.success) samples.add_time(record.latency());
    }
    results.emplace_back("open5gs", std::move(samples));
  }

  {  // dAuth with the home network online and local.
    bench::DauthOptions options;
    options.scenario = sim::Scenario::kEdgeFiber;
    options.physical_ran = true;
    options.pool_size = 1;
    options.home_is_serving = true;
    options.backup_count = 6;
    options.backup_pool = bench::BackupPool::kNonCloud;
    options.config.vectors_per_backup = 8;
    results.emplace_back("dauth-home-online", run_dauth(options));
  }

  for (std::size_t threshold : {2u, 4u, 6u}) {  // dAuth backup mode.
    bench::DauthOptions options;
    options.scenario = sim::Scenario::kEdgeFiber;
    options.physical_ran = true;
    options.pool_size = 1;
    options.home_offline = true;
    options.backup_count = 6;
    options.backup_pool = bench::BackupPool::kNonCloud;
    options.config.threshold = threshold;
    options.config.vectors_per_backup = 2 * kSamples + 16;  // race burns two per attach
    options.config.report_interval = 0;                     // home never returns
    results.emplace_back("dauth-backup-thresh[" + std::to_string(threshold) + "]",
                         run_dauth(options));
  }

  std::printf("\nFig 3a (boxplot rows: label,min,q1,median,q3,p95,max in ms)\n");
  for (auto& [label, samples] : results) bench::print_boxplot(label, samples);

  std::printf("\nFig 3b (CDF rows: cdf,label,ms,fraction)\n");
  for (auto& [label, samples] : results) bench::print_cdf(label, samples, 16);

  std::printf("\nSummaries\n");
  for (auto& [label, samples] : results) bench::print_summary(label, samples);
  return 0;
}
